// E8 (tutorial slides 76-77, after Müller et al. 2009b): redundancy in raw
// subspace clustering is the cause of low quality and high runtime. Sweep
// the number of irrelevant dimensions; compare raw CLIQUE output against
// OSCLU- and RESCU-selected results on size, runtime and accuracy.
#include <chrono>
#include <cstdio>

#include "data/generators.h"
#include "harness.h"
#include "subspace/clique.h"
#include "subspace/osclu.h"
#include "subspace/rescu.h"
#include "subspace/subspace_cluster.h"

using namespace multiclust;

namespace {

double Ms(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_redundancy",
                   "E8: redundancy causes low quality and high runtime");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  std::printf("E8: redundancy causes low quality and high runtime"
              " (slides 76-77)\n\n");
  std::printf("%6s | %9s %9s %8s | %7s %8s | %7s %8s\n", "dims",
              "CLIQUE#", "time(ms)", "F1", "OSCLU#", "F1", "RESCU#", "F1");

  bench::Series* raw_count = h.AddSeries("clique_clusters", "total_dims",
                                         "clusters");
  bench::Series* osclu_count = h.AddSeries("osclu_clusters", "total_dims",
                                           "clusters");
  bench::Series* rescu_count = h.AddSeries("rescu_clusters", "total_dims",
                                           "clusters");
  bench::Series* raw_time = h.AddSeries("clique_time", "total_dims", "ms",
                                        bench::ValueOptions::Timing());
  size_t first_raw = 0, last_raw = 0, last_osclu = 0, last_rescu = 0;
  const std::vector<size_t> noise_sweep =
      h.quick() ? std::vector<size_t>{0, 2, 4} : std::vector<size_t>{0, 2, 4, 6};
  for (size_t noise_dims : noise_sweep) {
    std::vector<ViewSpec> views(2);
    views[0] = {2, 2, 10.0, 0.6, ""};
    views[1] = {2, 3, 10.0, 0.6, ""};
    auto ds = MakeMultiView(h.quick() ? 200 : 300, views, noise_dims,
                            31 + noise_dims);
    const auto v0 = ds->GroundTruth("view0").value();

    CliqueOptions clique;
    clique.xi = 8;
    clique.tau = 0.04;
    clique.max_dims = 3;
    const auto t0 = std::chrono::steady_clock::now();
    auto all = RunClique(ds->data(), clique);
    const auto t1 = std::chrono::steady_clock::now();
    if (!all.ok()) continue;

    OscluOptions osclu;
    osclu.beta = 0.5;
    osclu.alpha = 0.4;
    auto o = RunOsclu(*all, osclu);
    RescuOptions rescu;
    auto r = RunRescu(*all, rescu);

    const size_t total_dims = 4 + noise_dims;
    std::printf("%6zu | %9zu %9.1f %8.3f | %7zu %8.3f | %7zu %8.3f\n",
                total_dims, all->clusters.size(), Ms(t0, t1),
                SubspacePairF1(*all, v0).value(), o->clusters.size(),
                SubspacePairF1(*o, v0).value(), r->clusters.size(),
                SubspacePairF1(*r, v0).value());
    raw_count->Add(static_cast<double>(total_dims),
                   static_cast<double>(all->clusters.size()));
    osclu_count->Add(static_cast<double>(total_dims),
                     static_cast<double>(o->clusters.size()));
    rescu_count->Add(static_cast<double>(total_dims),
                     static_cast<double>(r->clusters.size()));
    raw_time->Add(static_cast<double>(total_dims), Ms(t0, t1));
    if (noise_dims == noise_sweep.front()) first_raw = all->clusters.size();
    last_raw = all->clusters.size();
    last_osclu = o->clusters.size();
    last_rescu = r->clusters.size();
  }
  h.Check("raw_output_blows_up", last_raw > 2 * first_raw,
          "raw CLIQUE output should grow sharply with irrelevant dims");
  h.Check("selection_keeps_output_small",
          last_osclu < last_raw / 2 && last_rescu < last_raw / 2,
          "OSCLU/RESCU selected results should stay far below the raw size");
  std::printf("\nexpected shape: the raw result and its runtime blow up with"
              " added irrelevant\ndimensions while the selected results stay"
              " small with comparable (or better)\naccuracy — redundancy"
              " elimination is what keeps subspace clustering usable.\n");
  return h.Finish();
}
