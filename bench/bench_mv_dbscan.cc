// E12 (tutorial slides 105-107): union vs intersection multi-view DBSCAN.
// The union combination wins on *sparse* views (each view alone leaves many
// objects unconnected); the intersection combination wins on *unreliable*
// views (one view's neighbourhoods are corrupted) — a crossover.
#include <cstdio>

#include "common/rng.h"
#include "data/generators.h"
#include "harness.h"
#include "metrics/clustering_quality.h"
#include "metrics/partition_similarity.h"
#include "multiview/mv_dbscan.h"
#include "multiview/mv_spectral.h"

using namespace multiclust;

namespace {

struct Scenario {
  Matrix v1;
  Matrix v2;
  std::vector<int> truth;
};

// Sparse scenario: with a tight eps, each *single* view's neighbourhoods
// stay below the core threshold, but the union across views reaches it —
// the situation the union rule was designed for (slide 106).
Scenario MakeSparse(uint64_t seed) {
  Rng rng(seed);
  const size_t n = 240;
  Scenario s;
  s.v1 = Matrix(n, 2);
  s.v2 = Matrix(n, 2);
  s.truth.resize(n);
  const double c1[3][2] = {{0, 0}, {6, 0}, {0, 6}};
  const double c2[3][2] = {{3, 3}, {-3, 3}, {0, -4}};
  for (size_t i = 0; i < n; ++i) {
    const size_t c = rng.NextIndex(3);
    s.truth[i] = static_cast<int>(c);
    for (size_t j = 0; j < 2; ++j) {
      s.v1.at(i, j) = rng.Gaussian(c1[c][j], 0.5);
      s.v2.at(i, j) = rng.Gaussian(c2[c][j], 0.5);
    }
  }
  return s;
}

// Unreliable scenario: both views are crisp, but a third of the objects
// report garbage in one random view.
Scenario MakeUnreliable(uint64_t seed) {
  Rng rng(seed);
  const size_t n = 240;
  Scenario s;
  s.v1 = Matrix(n, 2);
  s.v2 = Matrix(n, 2);
  s.truth.resize(n);
  const double c1[3][2] = {{0, 0}, {6, 0}, {0, 6}};
  const double c2[3][2] = {{3, 3}, {-3, 3}, {0, -4}};
  for (size_t i = 0; i < n; ++i) {
    const size_t c = rng.NextIndex(3);
    s.truth[i] = static_cast<int>(c);
    for (size_t j = 0; j < 2; ++j) {
      s.v1.at(i, j) = rng.Gaussian(c1[c][j], 0.5);
      s.v2.at(i, j) = rng.Gaussian(c2[c][j], 0.5);
    }
    if (rng.NextDouble() < 0.33) {
      // Corrupt one view: the object teleports into a *wrong* cluster's
      // neighbourhood, creating misleading links.
      const size_t wrong = (c + 1 + rng.NextIndex(2)) % 3;
      const bool corrupt_v1 = rng.NextDouble() < 0.5;
      for (size_t j = 0; j < 2; ++j) {
        if (corrupt_v1) {
          s.v1.at(i, j) = rng.Gaussian(c1[wrong][j], 0.5);
        } else {
          s.v2.at(i, j) = rng.Gaussian(c2[wrong][j], 0.5);
        }
      }
    }
  }
  return s;
}

struct ComboResult {
  double union_ari = 0.0, union_noise = 1.0;
  double inter_ari = 0.0, inter_noise = 1.0;
};

ComboResult Run(bench::Harness* h, bench::Table* table, const char* name,
                const Scenario& s, double eps, size_t min_pts) {
  ComboResult out;
  for (const auto combo :
       {ViewCombination::kUnion, ViewCombination::kIntersection}) {
    MvDbscanOptions opts;
    opts.eps = {eps, eps};
    opts.min_pts = min_pts;
    opts.combination = combo;
    auto c = RunMvDbscan({s.v1, s.v2}, opts);
    if (!c.ok()) return out;
    const bool is_union = combo == ViewCombination::kUnion;
    const double noise = NoiseFraction(c->labels);
    const double ari = AdjustedRandIndex(c->labels, s.truth).value();
    std::printf("%-12s %-14s clusters=%2zu noise=%.2f ARI=%.3f\n", name,
                is_union ? "union" : "intersection", c->NumClusters(), noise,
                ari);
    table->Row();
    table->TextCell(name);
    table->TextCell(is_union ? "union" : "intersection");
    table->Cell(static_cast<double>(c->NumClusters()));
    table->Cell(noise);
    table->Cell(ari);
    if (is_union) {
      out.union_ari = ari;
      out.union_noise = noise;
    } else {
      out.inter_ari = ari;
      out.inter_noise = noise;
    }
  }
  // Multi-view spectral reference (slide 100): fuses the affinities
  // instead of the neighbourhood sets.
  MvSpectralOptions spec;
  spec.k = 3;
  spec.seed = 1;
  auto sc = RunMvSpectral({s.v1, s.v2}, spec);
  if (sc.ok()) {
    const double noise = NoiseFraction(sc->labels);
    const double ari = AdjustedRandIndex(sc->labels, s.truth).value();
    std::printf("%-12s %-14s clusters=%2zu noise=%.2f ARI=%.3f\n", name,
                "mv-spectral", sc->NumClusters(), noise, ari);
    table->Row();
    table->TextCell(name);
    table->TextCell("mv-spectral");
    table->Cell(static_cast<double>(sc->NumClusters()));
    table->Cell(noise);
    table->Cell(ari);
    h->WarnCheck(std::string("mv_spectral_solves_") + name, ari > 0.4,
                 "the affinity-fusing reference should stay usable here");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_mv_dbscan",
                   "E12: union vs intersection multi-view DBSCAN");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  std::printf("E12: union vs intersection multi-view DBSCAN"
              " (slides 105-107)\n\n");
  bench::Table* table = h.AddTable(
      "scenarios", {"scenario", "combination", "clusters", "noise", "ari"},
      bench::ValueOptions::Tolerance(1e-6));
  // Sparse: tight eps (0.25) — single views are below the core threshold.
  const ComboResult s1 = Run(&h, table, "sparse", MakeSparse(61), 0.25, 6);
  ComboResult s2 = s1;
  if (!h.quick()) s2 = Run(&h, table, "sparse", MakeSparse(62), 0.25, 6);
  std::printf("\n");
  // Unreliable: generous eps, but a third of objects lie in a wrong
  // cluster's neighbourhood in one view.
  const ComboResult u1 =
      Run(&h, table, "unreliable", MakeUnreliable(63), 1.1, 5);
  ComboResult u2 = u1;
  if (!h.quick()) u2 = Run(&h, table, "unreliable", MakeUnreliable(64), 1.1, 5);
  h.Check("union_wins_sparse",
          s1.union_ari > 0.9 && s2.union_ari > 0.9 && s1.inter_noise > 0.9 &&
              s2.inter_noise > 0.9,
          "sparse: union must recover the clusters, intersection must drown "
          "in noise");
  h.Check("intersection_wins_unreliable",
          u1.inter_ari > u1.union_ari + 0.2 &&
              u2.inter_ari > u2.union_ari + 0.2,
          "unreliable: intersection must clearly beat the union combination");
  std::printf("\nexpected shape: union wins the sparse scenario (low noise,"
              " perfect ARI) while\nintersection labels everything noise;"
              " intersection wins the unreliable scenario\n(corrupted links"
              " filtered) while union collapses into one merged cluster —\n"
              "the combination rule must match the data pathology.\n");
  return h.Finish();
}
