// E19 (tutorial slide 90): multiple spectral clustering views (mSC,
// axis-aligned variant). HSIC partitions the dimensions into statistically
// independent blocks; spectral clustering inside each block recovers one
// planted view per block — including non-convex (ring) structure that
// centroid methods cannot represent.
#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include "common/rng.h"
#include "data/generators.h"
#include "harness.h"
#include "metrics/multi_solution.h"
#include "metrics/partition_similarity.h"
#include "subspace/msc.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_msc",
                   "E19: multiple spectral views via HSIC");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  // View 1 (dims 0-1): two concentric rings. View 2 (dims 2-3): two blobs.
  // Assignments are independent.
  Rng rng(41);
  const size_t n = h.quick() ? 130 : 200;
  Matrix data(n, 4);
  std::vector<int> rings(n), blobs(n);
  for (size_t i = 0; i < n; ++i) {
    const bool outer = rng.NextDouble() < 0.5;
    rings[i] = outer ? 1 : 0;
    const double r = (outer ? 6.0 : 2.0) + rng.Gaussian(0, 0.15);
    const double theta = rng.Uniform(0, 2 * M_PI);
    data.at(i, 0) = r * std::cos(theta);
    data.at(i, 1) = r * std::sin(theta);
    const bool right = rng.NextDouble() < 0.5;
    blobs[i] = right ? 1 : 0;
    data.at(i, 2) = rng.Gaussian(right ? 5.0 : -5.0, 0.8);
    data.at(i, 3) = rng.Gaussian(right ? 3.0 : -3.0, 0.8);
  }

  std::printf("E19: multiple spectral views via HSIC (slide 90)\n");
  std::printf("planted: rings in dims {0,1}; blobs in dims {2,3};"
              " independent assignments\n\n");

  MscOptions opts;
  opts.num_views = 2;
  opts.k = 2;
  // Local affinity scale suited to the ring thickness (the median
  // heuristic over-smooths concentric rings).
  opts.gamma = 1.0;
  opts.seed = 41;
  auto r = RunMultipleSpectralViews(data, opts);
  if (!r.ok()) {
    std::fprintf(stderr, "mSC failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  bench::Table* views_table = h.AddTable(
      "views", {"dims", "nmi_rings", "nmi_blobs"},
      bench::ValueOptions::Tolerance(1e-6));
  std::set<std::set<size_t>> recovered_blocks;
  double best_rings_nmi = 0.0;
  for (const auto& view : r->views) {
    std::string dims;
    for (size_t d : view.dims) dims += std::to_string(d) + " ";
    const double nmi_rings =
        NormalizedMutualInformation(view.clustering.labels, rings).value();
    const double nmi_blobs =
        NormalizedMutualInformation(view.clustering.labels, blobs).value();
    std::printf("view over dims { %s}: NMI(rings)=%.3f NMI(blobs)=%.3f\n",
                dims.c_str(), nmi_rings, nmi_blobs);
    views_table->Row();
    views_table->TextCell(dims);
    views_table->Cell(nmi_rings);
    views_table->Cell(nmi_blobs);
    recovered_blocks.insert(
        std::set<size_t>(view.dims.begin(), view.dims.end()));
    best_rings_nmi = std::max(best_rings_nmi, nmi_rings);
  }
  auto match = MatchSolutionsToTruths({rings, blobs}, r->solutions.Labels());
  std::printf("\nrecovery of both planted views: %.3f\n",
              match->mean_recovery);
  std::printf("pairwise dim dependence (HSIC):\n");
  for (size_t a = 0; a < 4; ++a) {
    std::printf("  ");
    for (size_t b = 0; b < 4; ++b) {
      std::printf("%8.4f", r->dim_dependence.at(a, b));
    }
    std::printf("\n");
  }
  h.Scalar("mean_recovery", match->mean_recovery,
           bench::ValueOptions::Tolerance(1e-6));
  h.Scalar("best_rings_nmi", best_rings_nmi,
           bench::ValueOptions::Tolerance(1e-6));
  const bool blocks_exact =
      recovered_blocks.count({0, 1}) == 1 && recovered_blocks.count({2, 3}) == 1;
  h.Check("dimension_blocks_recovered", blocks_exact,
          "HSIC must partition the dims into exactly {0,1} and {2,3}");
  h.Check("nonconvex_view_clustered", best_rings_nmi > 0.95,
          "the rings view must be solved — k-means-based methods cannot");
  h.Check("both_views_recovered", match->mean_recovery > 0.95,
          "both planted views must be recovered");
  std::printf("\nexpected shape: the dimension blocks {0,1} and {2,3} are"
              " recovered from the\nHSIC matrix (high within-view, ~0"
              " across), and the ring view is clustered\ncorrectly —"
              " something k-means-based multi-clusterers cannot do.\n");
  return h.Finish();
}
