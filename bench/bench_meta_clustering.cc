// E14 (tutorial slide 29): meta clustering's risk — blind, undirected
// generation of base clusterings tends to produce highly similar solutions.
// Diversified generation (random feature weighting) is what buys coverage
// of genuinely different groupings.
#include <cstdio>

#include "altspace/meta_clustering.h"
#include "data/generators.h"
#include "metrics/multi_solution.h"

using namespace multiclust;

int main() {
  // A dominant view (wide spread) plus a weak alternative view: blind
  // k-means restarts all fall into the dominant basin.
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 26.0, 0.8, "dominant"};
  views[1] = {2, 2, 5.5, 0.8, "weak"};
  auto ds = MakeMultiView(160, views, 0, 81);
  const auto horizontal = ds->GroundTruth("dominant").value();
  const auto vertical = ds->GroundTruth("weak").value();

  std::printf("E14: meta clustering — blind vs diversified generation"
              " (slide 29)\n");
  std::printf("data: a dominant planted view and a weak alternative"
              " view\n\n");
  std::printf("%14s | %14s %14s | %10s\n", "generation", "base diversity",
              "min pair diss", "recovery");
  for (const bool diversified : {false, true}) {
    MetaClusteringOptions opts;
    opts.num_base = 30;
    opts.k = 2;
    opts.meta_k = 4;
    opts.feature_weighting = diversified;
    opts.weight_spread = 1.5;
    opts.seed = 81;
    auto r = RunMetaClustering(ds->data(), opts);
    if (!r.ok()) continue;
    std::vector<std::vector<int>> base_labels;
    for (const auto& c : r->base) base_labels.push_back(c.labels);
    auto match = MatchSolutionsToTruths({horizontal, vertical},
                                        r->representatives.Labels());
    std::printf("%14s | %14.3f %14.3f | %10.3f\n",
                diversified ? "diversified" : "blind",
                MeanPairwiseDissimilarity(base_labels).value(),
                MinPairwiseDissimilarity(base_labels).value(),
                match->mean_recovery);
  }
  std::printf("\nexpected shape: blind restarts generate similar solutions"
              " (low diversity)\nand can miss one of the two planted"
              " splits; feature-weighted generation\nraises diversity and"
              " recovery.\n");
  return 0;
}
