// E14 (tutorial slide 29): meta clustering's risk — blind, undirected
// generation of base clusterings tends to produce highly similar solutions.
// Diversified generation (random feature weighting) is what buys coverage
// of genuinely different groupings.
#include <cstdio>

#include "altspace/meta_clustering.h"
#include "data/generators.h"
#include "harness.h"
#include "metrics/multi_solution.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_meta_clustering",
                   "E14: meta clustering, blind vs diversified generation");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  // A dominant view (wide spread) plus a weak alternative view: blind
  // k-means restarts all fall into the dominant basin.
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 26.0, 0.8, "dominant"};
  views[1] = {2, 2, 5.5, 0.8, "weak"};
  auto ds = MakeMultiView(h.quick() ? 120 : 160, views, 0, 81);
  const auto horizontal = ds->GroundTruth("dominant").value();
  const auto vertical = ds->GroundTruth("weak").value();

  std::printf("E14: meta clustering — blind vs diversified generation"
              " (slide 29)\n");
  std::printf("data: a dominant planted view and a weak alternative"
              " view\n\n");
  std::printf("%14s | %14s %14s | %10s\n", "generation", "base diversity",
              "min pair diss", "recovery");
  double blind_diversity = 0.0, blind_recovery = 0.0;
  double div_diversity = 0.0, div_recovery = 0.0;
  for (const bool diversified : {false, true}) {
    MetaClusteringOptions opts;
    opts.num_base = h.quick() ? 15 : 30;
    opts.k = 2;
    opts.meta_k = 4;
    opts.feature_weighting = diversified;
    opts.weight_spread = 1.5;
    opts.seed = 81;
    auto r = RunMetaClustering(ds->data(), opts);
    if (!r.ok()) continue;
    std::vector<std::vector<int>> base_labels;
    for (const auto& c : r->base) base_labels.push_back(c.labels);
    auto match = MatchSolutionsToTruths({horizontal, vertical},
                                        r->representatives.Labels());
    const double diversity = MeanPairwiseDissimilarity(base_labels).value();
    std::printf("%14s | %14.3f %14.3f | %10.3f\n",
                diversified ? "diversified" : "blind", diversity,
                MinPairwiseDissimilarity(base_labels).value(),
                match->mean_recovery);
    if (diversified) {
      div_diversity = diversity;
      div_recovery = match->mean_recovery;
    } else {
      blind_diversity = diversity;
      blind_recovery = match->mean_recovery;
    }
  }
  h.Scalar("blind_diversity", blind_diversity,
           bench::ValueOptions::Tolerance(1e-6));
  h.Scalar("blind_recovery", blind_recovery,
           bench::ValueOptions::Tolerance(1e-6));
  h.Scalar("diversified_diversity", div_diversity,
           bench::ValueOptions::Tolerance(1e-6));
  h.Scalar("diversified_recovery", div_recovery,
           bench::ValueOptions::Tolerance(1e-6));
  h.Check("blind_generation_misses_weak_view",
          blind_diversity < 0.1 && blind_recovery < 0.7,
          "blind restarts should collapse into the dominant basin");
  h.Check("diversified_generation_recovers_both",
          div_diversity > blind_diversity + 0.2 &&
              div_recovery > blind_recovery + 0.2,
          "feature weighting must raise both diversity and recovery");
  std::printf("\nexpected shape: blind restarts generate similar solutions"
              " (low diversity)\nand can miss one of the two planted"
              " splits; feature-weighted generation\nraises diversity and"
              " recovery.\n");
  return h.Finish();
}
