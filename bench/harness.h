#ifndef MULTICLUST_BENCH_HARNESS_H_
#define MULTICLUST_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/profile.h"
#include "common/status.h"

namespace multiclust {
namespace bench {

/// Shared experiment harness for the bench/ binaries (see DESIGN.md
/// "Report schema"). Each binary keeps its human-readable text output and
/// additionally registers its results — named scalars, (x, y) series,
/// string/number tables and pass/fail shape assertions — with a Harness.
/// The harness understands two flags:
///
///   --json=PATH   write the machine-readable result document to PATH
///   --quick       reduced-size mode (the binary reads harness.quick() and
///                 shrinks its workload); recorded in the document
///
/// `bench_diff` compares two such documents (or two merged suite
/// documents) with per-metric tolerance bands and exits nonzero on
/// regression: shape checks hard-fail, anything registered as
/// timing-dependent only warns — wall-clock numbers are not comparable
/// across hosts, shapes are.
///
/// Document schema (schema_version 1, kind "multiclust.bench"):
///   {"schema_version":1,"kind":"multiclust.bench","bench":"<binary>",
///    "title":"...","quick":false,
///    "host":{"logical_cores":..,"threads":..,"isa":"avx512f",
///            "simd_backend":"avx2","simd_compiled":true,
///            "double_lanes":4,"float_lanes":8},   // optional (v1 docs)
///    "resource":{"wall_ms":..,"user_cpu_ms":..,"system_cpu_ms":..,
///                "peak_rss_kb":..,"minor_faults":..,"major_faults":..,
///                "alloc_count":..,"alloc_bytes":..,"flops":..,
///                "kernel_bytes":..},   // optional: ResourceProfile of the
///                                      // bench process, harness lifetime;
///                                      // absent when telemetry compiles out
///                                      // (wall-clock — bench_diff ignores)
///    "scalars":[{"name":..,"value":..,"unit":..,"timing":..,
///                "tol_rel":..,"tol_abs":..}],
///    "series":[{"name":..,"x_name":..,"y_name":..,"unit":..,"timing":..,
///               "tol_rel":..,"tol_abs":..,"points":[[x,y],..]}],
///    "tables":[{"name":..,"columns":[..],
///               "rows":[[cell,..],..]}]          // cells: string|number
///    "checks":[{"name":..,"passed":..,"severity":"hard"|"warn",
///               "detail":".."}]}
/// Merged suites: {"schema_version":1,"kind":"multiclust.bench_suite",
///                 "benches":[<bench documents>]}.

/// Comparison tolerances of one scalar/series. The defaults suit the
/// seeded, bit-deterministic quantities most benches emit (tiny relative
/// band absorbs cross-compiler libm drift); mark wall-clock measurements
/// with `Timing()` so bench_diff never fails on them.
struct ValueOptions {
  std::string unit;        ///< free-form, e.g. "ms", "ARI", "nmi"
  bool timing = false;     ///< wall-clock-dependent: diff warns, never fails
  double tol_rel = 1e-9;   ///< relative tolerance band for bench_diff
  double tol_abs = 1e-12;  ///< absolute tolerance band for bench_diff

  static ValueOptions Timing() {
    ValueOptions o;
    o.unit = "ms";
    o.timing = true;
    return o;
  }
  static ValueOptions Tolerance(double rel, double abs = 1e-12) {
    ValueOptions o;
    o.tol_rel = rel;
    o.tol_abs = abs;
    return o;
  }
};

/// One registered series: a named list of (x, y) points.
class Series {
 public:
  void Add(double x, double y) { points_.push_back({x, y}); }
  size_t size() const { return points_.size(); }

 private:
  friend class Harness;
  std::string name_, x_name_, y_name_;
  ValueOptions options_;
  std::vector<std::pair<double, double>> points_;
};

/// One registered table: fixed columns, rows of string or number cells.
class Table {
 public:
  /// Starts a new row; fill it with Cell()/TextCell() calls.
  void Row() { rows_.emplace_back(); }
  void Cell(double v) { rows_.back().push_back({true, v, {}}); }
  void TextCell(const std::string& v) { rows_.back().push_back({false, 0.0, v}); }
  size_t num_rows() const { return rows_.size(); }

 private:
  friend class Harness;
  struct CellValue {
    bool is_number;
    double number;
    std::string text;
  };
  std::string name_;
  ValueOptions options_;
  std::vector<std::string> columns_;
  std::vector<std::vector<CellValue>> rows_;
};

class Harness {
 public:
  /// `id` is the binary name (doc "bench" field, bench_diff's match key);
  /// `title` a human one-liner (usually the experiment id + claim).
  Harness(std::string id, std::string title);

  /// Consumes --json=PATH / --quick / --help from argv (compacting argv and
  /// updating *argc in place so remaining flags can go to another parser,
  /// e.g. benchmark::Initialize). Returns false when the binary should exit
  /// immediately (--help, malformed flag); exit with ExitCode() then.
  bool ParseArgs(int* argc, char** argv);
  int ExitCode() const { return exit_code_; }

  bool quick() const { return quick_; }
  const std::string& json_path() const { return json_path_; }

  /// --- Result registration. Names are unique per kind; re-registering a
  ///     scalar overwrites (convenient for derived metrics). ---
  void Scalar(const std::string& name, double value,
              const ValueOptions& options = {});
  /// Sugar for a wall-clock scalar in ms.
  void Timing(const std::string& name, double ms);
  /// The registered value of a scalar (`def` when absent) — for deriving
  /// summary metrics from already-registered ones.
  double ScalarValue(const std::string& name, double def) const;

  Series* AddSeries(const std::string& name, const std::string& x_name,
                    const std::string& y_name,
                    const ValueOptions& options = {});
  Table* AddTable(const std::string& name,
                  const std::vector<std::string>& columns,
                  const ValueOptions& options = {});

  /// Shape assertion: hard-fails bench_diff (and this binary's exit code)
  /// when false. Use for the qualitative claims EXPERIMENTS.md records —
  /// crossovers, orderings, recovery thresholds.
  void Check(const std::string& name, bool passed, const std::string& detail);
  /// Host-dependent assertion (timing bars, speedups): failure prints and
  /// is recorded, but never fails the binary or bench_diff.
  void WarnCheck(const std::string& name, bool passed,
                 const std::string& detail);

  /// The result document (schema above).
  std::string DocumentJson() const;

  /// Prints the check summary, writes the document when --json was given,
  /// and returns the process exit code: 0 when every hard check passed and
  /// the write succeeded, 1 otherwise. Call as `return harness.Finish();`.
  int Finish();

 private:
  struct ScalarResult {
    std::string name;
    double value;
    ValueOptions options;
  };
  struct CheckResult {
    std::string name;
    bool passed;
    bool hard;
    std::string detail;
  };

  std::string id_;
  std::string title_;
  std::string json_path_;
  bool quick_ = false;
  int exit_code_ = 0;
  std::vector<ScalarResult> scalars_;
  // unique_ptr: AddSeries/AddTable hand out stable pointers that must
  // survive later registrations (vector growth would invalidate them).
  std::vector<std::unique_ptr<Series>> series_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::vector<CheckResult> checks_;
  // Resource accounting over the harness's lifetime — construction to
  // DocumentJson — recorded in the optional "resource" envelope section.
  telemetry::ResourceScope resource_scope_;
};

/// --- Document validation (the schema test; also bench_diff --validate).

/// Verifies `doc` is a well-formed bench document: envelope fields,
/// typed scalars/series/tables/checks.
Status ValidateBenchDocument(const json::Value& doc);

/// Verifies a merged suite document (each member bench doc included).
Status ValidateSuiteDocument(const json::Value& doc);

/// Merges per-bench documents into one suite document.
std::string MergeSuiteJson(const std::vector<json::Value>& docs);

/// --- Snapshot comparison (the bench_diff engine). ---

struct DiffOptions {
  /// Multiplicative band for timing values: warn when current drifts
  /// outside [base/f, base*f]. Timing never fails the diff.
  double timing_band = 3.0;
  /// Floor below which timing values are considered noise and skipped.
  double timing_floor_ms = 0.5;
};

struct DiffReport {
  std::vector<std::string> failures;  ///< regressions (nonzero exit)
  std::vector<std::string> warnings;  ///< timing drift, metadata mismatches
  size_t compared = 0;                ///< values compared within band

  bool failed() const { return !failures.empty(); }
  std::string ToString() const;
};

/// Compares two bench documents of the same binary. Rules:
///  - a hard check failing in `current` is a regression (so is one that
///    disappeared); warn checks only warn;
///  - non-timing scalars/series/tables must match the baseline within
///    their recorded tol_rel/tol_abs band; missing entries are
///    regressions, new entries only warn (baseline needs regeneration);
///  - series must have identical x grids (within tolerance);
///  - timing entries warn outside DiffOptions::timing_band;
///  - when the two documents' `quick` flags differ, numeric comparison is
///    skipped (the workloads differ by design) and only checks compare.
DiffReport DiffBenchDocuments(const json::Value& baseline,
                              const json::Value& current,
                              const DiffOptions& options);

/// Compares two suite documents, matching member benches by "bench" id.
/// A bench present in the baseline but missing from current is a
/// regression; an extra bench in current warns.
DiffReport DiffSuites(const json::Value& baseline, const json::Value& current,
                      const DiffOptions& options);

}  // namespace bench
}  // namespace multiclust

#endif  // MULTICLUST_BENCH_HARNESS_H_
