// A1 (ablation): the base k-means substrate. k-means++ seeding vs uniform
// random seeding, across restart budgets — SSE and accuracy. Justifies the
// library default (plus_plus_init = true).
#include <cstdio>

#include "cluster/kmeans.h"
#include "data/generators.h"
#include "harness.h"
#include "metrics/partition_similarity.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_kmeans_ablation", "A1: k-means seeding ablation");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  // The classic k-means++ showcase: many well-separated clusters, where
  // uniform seeding routinely drops whole clusters.
  std::vector<BlobSpec> blobs;
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      blobs.push_back({{x * 12.0, y * 12.0}, 0.7, 40});
    }
  }
  auto ds = MakeBlobs(blobs, 101);
  const auto truth = ds->GroundTruth("labels").value();

  std::printf("A1: k-means seeding ablation\n\n");
  std::printf("%10s %10s | %12s %12s\n", "init", "restarts", "mean SSE",
              "mean ARI");
  bench::Table* table = h.AddTable(
      "seeding", {"init", "restarts", "mean_sse", "mean_ari"},
      bench::ValueOptions::Tolerance(1e-6));
  // mean SSE per restart budget, [0]=random, [1]=kmeans++.
  double mean_sse[2][3] = {{0}};
  const std::vector<size_t> restart_budgets = {1, 5, 20};
  const int kTrials = h.quick() ? 5 : 10;
  for (const bool plus_plus : {false, true}) {
    for (size_t b = 0; b < restart_budgets.size(); ++b) {
      const size_t restarts = restart_budgets[b];
      double sse = 0.0, ari = 0.0;
      for (int t = 0; t < kTrials; ++t) {
        KMeansOptions opts;
        opts.k = 9;
        opts.restarts = restarts;
        opts.plus_plus_init = plus_plus;
        opts.seed = 1000 + t;
        auto c = RunKMeans(ds->data(), opts);
        sse += c->quality;
        ari += AdjustedRandIndex(c->labels, truth).value();
      }
      sse /= kTrials;
      ari /= kTrials;
      std::printf("%10s %10zu | %12.1f %12.3f\n",
                  plus_plus ? "kmeans++" : "random", restarts, sse, ari);
      table->Row();
      table->TextCell(plus_plus ? "kmeans++" : "random");
      table->Cell(static_cast<double>(restarts));
      table->Cell(sse);
      table->Cell(ari);
      mean_sse[plus_plus ? 1 : 0][b] = sse;
    }
  }
  h.Check("plus_plus_dominates_random",
          mean_sse[1][0] < mean_sse[0][0] && mean_sse[1][1] < mean_sse[0][1] &&
              mean_sse[1][2] <= mean_sse[0][2] + 1e-6,
          "kmeans++ must match or beat random seeding at every budget");
  h.Check("one_plus_plus_restart_beats_five_random",
          mean_sse[1][0] < mean_sse[0][1],
          "the justification for the plus_plus_init=true default");
  std::printf("\nexpected shape: kmeans++ dominates random seeding at every"
              " restart budget;\nextra restarts shrink the gap but never"
              " invert it.\n");
  return h.Finish();
}
