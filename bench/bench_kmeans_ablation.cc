// A1 (ablation): the base k-means substrate. k-means++ seeding vs uniform
// random seeding, across restart budgets — SSE and accuracy. Justifies the
// library default (plus_plus_init = true).
#include <cstdio>

#include "cluster/kmeans.h"
#include "data/generators.h"
#include "metrics/partition_similarity.h"

using namespace multiclust;

int main() {
  // The classic k-means++ showcase: many well-separated clusters, where
  // uniform seeding routinely drops whole clusters.
  std::vector<BlobSpec> blobs;
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      blobs.push_back({{x * 12.0, y * 12.0}, 0.7, 40});
    }
  }
  auto ds = MakeBlobs(blobs, 101);
  const auto truth = ds->GroundTruth("labels").value();

  std::printf("A1: k-means seeding ablation\n\n");
  std::printf("%10s %10s | %12s %12s\n", "init", "restarts", "mean SSE",
              "mean ARI");
  for (const bool plus_plus : {false, true}) {
    for (size_t restarts : {1, 5, 20}) {
      double sse = 0.0, ari = 0.0;
      const int kTrials = 10;
      for (int t = 0; t < kTrials; ++t) {
        KMeansOptions opts;
        opts.k = 9;
        opts.restarts = restarts;
        opts.plus_plus_init = plus_plus;
        opts.seed = 1000 + t;
        auto c = RunKMeans(ds->data(), opts);
        sse += c->quality;
        ari += AdjustedRandIndex(c->labels, truth).value();
      }
      std::printf("%10s %10zu | %12.1f %12.3f\n",
                  plus_plus ? "kmeans++" : "random", restarts,
                  sse / kTrials, ari / kTrials);
    }
  }
  std::printf("\nexpected shape: kmeans++ dominates random seeding at every"
              " restart budget;\nextra restarts shrink the gap but never"
              " invert it.\n");
  return 0;
}
