// E1 (tutorial slide 26): the four-squares toy admits two equally good
// 2-partitions. Traditional k-means commits to one per run; the
// multiple-clustering methods report both.
#include <cstdio>
#include <map>

#include "altspace/cami.h"
#include "altspace/coala.h"
#include "altspace/dec_kmeans.h"
#include "cluster/kmeans.h"
#include "data/generators.h"
#include "harness.h"
#include "metrics/multi_solution.h"
#include "metrics/partition_similarity.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_toy_alternatives",
                   "E1: multiple clusterings on the four-squares toy");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  auto ds = MakeFourSquares(50, 10.0, 0.8, 1);
  const auto horizontal = ds->GroundTruth("horizontal").value();
  const auto vertical = ds->GroundTruth("vertical").value();

  std::printf("E1: multiple clusterings on the four-squares toy "
              "(slide 26)\n\n");

  // Independent k-means runs: which split does each find?
  const uint64_t kRestarts = h.quick() ? 10 : 30;
  std::printf("k-means over %llu random restarts (one solution per run):\n",
              static_cast<unsigned long long>(kRestarts));
  size_t found_h = 0, found_v = 0, found_other = 0;
  for (uint64_t seed = 0; seed < kRestarts; ++seed) {
    KMeansOptions km;
    km.k = 2;
    km.plus_plus_init = false;
    km.seed = seed * 977 + 13;
    auto c = RunKMeans(ds->data(), km);
    const double nh = NormalizedMutualInformation(c->labels,
                                                  horizontal).value();
    const double nv = NormalizedMutualInformation(c->labels,
                                                  vertical).value();
    if (nh > 0.9) {
      ++found_h;
    } else if (nv > 0.9) {
      ++found_v;
    } else {
      ++found_other;
    }
  }
  std::printf("  horizontal split: %zu runs | vertical split: %zu runs |"
              " other: %zu runs\n",
              found_h, found_v, found_other);
  std::printf("  -> each run yields ONE of the valid groupings;"
              " the user never sees both together\n\n");
  h.Scalar("kmeans_found_horizontal", static_cast<double>(found_h));
  h.Scalar("kmeans_found_vertical", static_cast<double>(found_v));
  h.Scalar("kmeans_found_other", static_cast<double>(found_other));
  h.Check("kmeans_commits_to_one_split", found_h > 0 && found_v > 0,
          "restarts should land on both valid splits across runs");

  bench::Table* methods = h.AddTable(
      "methods", {"method", "solutions", "diversity", "recovery"},
      bench::ValueOptions::Tolerance(1e-6));
  auto report = [&](const char* name, const SolutionSet& set) {
    auto match =
        MatchSolutionsToTruths({horizontal, vertical}, set.Labels());
    const double diversity = set.Diversity().value();
    std::printf("%-22s solutions=%zu  diversity=%.3f  recovery=%.3f\n", name,
                set.size(), diversity, match->mean_recovery);
    methods->Row();
    methods->TextCell(name);
    methods->Cell(static_cast<double>(set.size()));
    methods->Cell(diversity);
    methods->Cell(match->mean_recovery);
    h.Check(std::string(name) + "_recovers_both_truths",
            set.size() == 2 && diversity > 0.95 &&
                match->mean_recovery > 0.95,
            "expected a 2-solution set with diversity ~1 and recovery ~1");
  };

  DecKMeansOptions dk;
  dk.ks = {2, 2};
  dk.lambda = 4.0;
  dk.restarts = 5;
  dk.seed = 2;
  auto deck = RunDecorrelatedKMeans(ds->data(), dk);
  report("dec-kmeans", deck->solutions);

  CamiOptions cami;
  cami.k1 = cami.k2 = 2;
  cami.mu = 200.0;
  cami.restarts = 6;
  cami.seed = 3;
  auto cm = RunCami(ds->data(), cami);
  report("cami", cm->solutions);

  // COALA: given one split, produce the alternative -> a 2-solution set.
  CoalaOptions co;
  co.k = 2;
  co.w = 0.4;
  auto alt = RunCoala(ds->data(), horizontal, co);
  SolutionSet coala_set;
  Clustering given;
  given.labels = horizontal;
  given.algorithm = "given";
  (void)coala_set.Add(std::move(given));
  (void)coala_set.Add(std::move(*alt));
  report("coala(given=horiz)", coala_set);

  std::printf("\nexpected shape: recovery ~1.0 and diversity ~1.0 for the"
              " multi-solution methods.\n");
  return h.Finish();
}
