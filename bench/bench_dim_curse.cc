// E15 (tutorial slide 12): the curse of dimensionality — the relative
// distance contrast (max - min) / min between a query and a uniform sample
// collapses towards 0 as the dimensionality grows, which is why relevant
// subspaces must be identified before distances mean anything.
#include <cmath>
#include <cstdio>

#include "data/generators.h"
#include "harness.h"
#include "linalg/matrix.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_dim_curse",
                   "E15: curse of dimensionality, relative contrast");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  std::printf("E15: curse of dimensionality — relative contrast"
              " (slide 12)\n\n");
  std::printf("%8s %16s %16s %16s\n", "dims", "min dist", "max dist",
              "(max-min)/min");
  bench::Series* contrast_series = h.AddSeries(
      "relative_contrast", "dims", "(max-min)/min",
      bench::ValueOptions::Tolerance(1e-6));
  const std::vector<size_t> dims =
      h.quick() ? std::vector<size_t>{1, 5, 20, 100}
                : std::vector<size_t>{1, 2, 5, 10, 20, 50, 100, 200, 500};
  const size_t kSamples = h.quick() ? 300 : 500;
  bool monotone = true;
  double prev = 1e300, first = 0.0, last = 0.0;
  for (size_t d : dims) {
    auto ds = MakeUniformCube(kSamples, d, 91);
    if (!ds.ok()) continue;
    const std::vector<double> query(d, 0.5);  // cube centre
    double min_d = 1e300, max_d = 0.0;
    for (size_t i = 0; i < ds->num_objects(); ++i) {
      const double dist = EuclideanDistance(ds->Object(i), query);
      min_d = std::min(min_d, dist);
      max_d = std::max(max_d, dist);
    }
    const double contrast = (max_d - min_d) / min_d;
    std::printf("%8zu %16.4f %16.4f %16.4f\n", d, min_d, max_d, contrast);
    contrast_series->Add(static_cast<double>(d), contrast);
    if (contrast > prev + 1e-12) monotone = false;
    prev = contrast;
    if (d == dims.front()) first = contrast;
    last = contrast;
  }
  h.Check("contrast_decays_monotonically", monotone,
          "relative contrast must shrink at every dimensionality step");
  h.Check("contrast_collapses", last < first / 100.0,
          "the highest dimensionality must show a collapsed contrast");
  std::printf("\nexpected shape: the relative contrast decays towards 0 as"
              " dimensionality\ngrows — nearest neighbours stop being"
              " meaningful in the full space.\n");
  return h.Finish();
}
