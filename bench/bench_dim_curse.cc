// E15 (tutorial slide 12): the curse of dimensionality — the relative
// distance contrast (max - min) / min between a query and a uniform sample
// collapses towards 0 as the dimensionality grows, which is why relevant
// subspaces must be identified before distances mean anything.
#include <cmath>
#include <cstdio>

#include "data/generators.h"
#include "linalg/matrix.h"

using namespace multiclust;

int main() {
  std::printf("E15: curse of dimensionality — relative contrast"
              " (slide 12)\n\n");
  std::printf("%8s %16s %16s %16s\n", "dims", "min dist", "max dist",
              "(max-min)/min");
  for (size_t d : {1, 2, 5, 10, 20, 50, 100, 200, 500}) {
    auto ds = MakeUniformCube(500, d, 91);
    if (!ds.ok()) continue;
    const std::vector<double> query(d, 0.5);  // cube centre
    double min_d = 1e300, max_d = 0.0;
    for (size_t i = 0; i < ds->num_objects(); ++i) {
      const double dist = EuclideanDistance(ds->Object(i), query);
      min_d = std::min(min_d, dist);
      max_d = std::max(max_d, dist);
    }
    std::printf("%8zu %16.4f %16.4f %16.4f\n", d, min_d, max_d,
                (max_d - min_d) / min_d);
  }
  std::printf("\nexpected shape: the relative contrast decays towards 0 as"
              " dimensionality\ngrows — nearest neighbours stop being"
              " meaningful in the full space.\n");
  return 0;
}
