// bench_diff — compare, validate and merge bench harness JSON documents.
//
//   bench_diff BASELINE CURRENT [--timing-band=F] [--timing-floor-ms=M]
//       Compares two snapshots (per-bench or merged suite documents;
//       detected from the "kind" field). Exits 1 on regression: failed
//       hard checks, missing metrics, or non-timing values outside their
//       recorded tolerance band. Timing drift only warns.
//
//   bench_diff --validate FILE...
//       Schema-validates each document; exits 1 on the first invalid one.
//
//   bench_diff --merge -o OUT FILE...
//       Merges per-bench documents into one suite document at OUT.
//
// The committed BENCH_baseline.json is a merged --quick suite; regenerate
// it with the loop in EXPERIMENTS.md when results change intentionally.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/report.h"
#include "common/result.h"
#include "harness.h"

namespace {

using multiclust::Result;
using multiclust::Status;
using multiclust::bench::DiffOptions;
using multiclust::bench::DiffReport;

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "'");
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("read error on '" + path + "'");
  return out;
}

Result<multiclust::json::Value> LoadJson(const std::string& path) {
  auto content = ReadFile(path);
  if (!content.ok()) return content.status();
  auto parsed = multiclust::json::Parse(*content);
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.status().ToString());
  }
  return parsed;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_diff BASELINE CURRENT [--timing-band=F] "
               "[--timing-floor-ms=M]\n"
               "       bench_diff --validate FILE...\n"
               "       bench_diff --merge -o OUT FILE...\n");
  return 2;
}

int RunValidate(const std::vector<std::string>& files) {
  if (files.empty()) return Usage();
  for (const std::string& path : files) {
    auto doc = LoadJson(path);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
      return 1;
    }
    const bool suite =
        doc->GetString("kind", "") == "multiclust.bench_suite";
    const Status st = suite ? multiclust::bench::ValidateSuiteDocument(*doc)
                            : multiclust::bench::ValidateBenchDocument(*doc);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      return 1;
    }
    std::printf("%s: valid %s document\n", path.c_str(),
                suite ? "suite" : "bench");
  }
  return 0;
}

int RunMerge(const std::string& out_path,
             const std::vector<std::string>& files) {
  if (out_path.empty() || files.empty()) return Usage();
  std::vector<multiclust::json::Value> docs;
  for (const std::string& path : files) {
    auto doc = LoadJson(path);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
      return 1;
    }
    const Status st = multiclust::bench::ValidateBenchDocument(*doc);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      return 1;
    }
    docs.push_back(std::move(*doc));
  }
  const std::string merged = multiclust::bench::MergeSuiteJson(docs);
  const Status st = multiclust::WriteStringToFile(out_path, merged);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("merged %zu documents into %s\n", docs.size(),
              out_path.c_str());
  return 0;
}

int RunCompare(const std::string& baseline_path,
               const std::string& current_path, const DiffOptions& options) {
  auto baseline = LoadJson(baseline_path);
  auto current = LoadJson(current_path);
  if (!baseline.ok() || !current.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!baseline.ok() ? baseline.status() : current.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  const bool base_suite =
      baseline->GetString("kind", "") == "multiclust.bench_suite";
  const bool cur_suite =
      current->GetString("kind", "") == "multiclust.bench_suite";
  if (base_suite != cur_suite) {
    std::fprintf(stderr,
                 "cannot compare a suite document with a single-bench "
                 "document (%s vs %s)\n",
                 baseline_path.c_str(), current_path.c_str());
    return 1;
  }
  const DiffReport report =
      base_suite
          ? multiclust::bench::DiffSuites(*baseline, *current, options)
          : multiclust::bench::DiffBenchDocuments(*baseline, *current,
                                                  options);
  std::fputs(report.ToString().c_str(), stdout);
  return report.failed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string merge_out;
  bool validate = false, merge = false;
  DiffOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--validate") == 0) {
      validate = true;
    } else if (std::strcmp(arg, "--merge") == 0) {
      merge = true;
    } else if (std::strcmp(arg, "-o") == 0 && i + 1 < argc) {
      merge_out = argv[++i];
    } else if (std::strncmp(arg, "--timing-band=", 14) == 0) {
      options.timing_band = std::strtod(arg + 14, nullptr);
      if (options.timing_band < 1.0) return Usage();
    } else if (std::strncmp(arg, "--timing-floor-ms=", 18) == 0) {
      options.timing_floor_ms = std::strtod(arg + 18, nullptr);
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage();
      return 0;
    } else if (arg[0] == '-' && arg[1] != '\0') {
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (validate && merge) return Usage();
  if (validate) return RunValidate(positional);
  if (merge) return RunMerge(merge_out, positional);
  if (positional.size() != 2) return Usage();
  return RunCompare(positional[0], positional[1], options);
}
