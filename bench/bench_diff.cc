// bench_diff — compare, validate and merge bench harness JSON documents.
//
//   bench_diff BASELINE CURRENT [--timing-band=F] [--timing-floor-ms=M]
//       Compares two snapshots (per-bench or merged suite documents;
//       detected from the "kind" field). Exits 1 on regression: failed
//       hard checks, missing metrics, or non-timing values outside their
//       recorded tolerance band. Timing drift only warns.
//
//   bench_diff --validate FILE...
//       Schema-validates each document; exits 1 on the first invalid one.
//
//   bench_diff --merge -o OUT FILE...
//       Merges per-bench documents into one suite document at OUT.
//
//   bench_diff --report BASELINE CURRENT
//       Compares two discovery-report JSONs (discover_cli output) for
//       bit-identical results, ignoring wall-clock fields (elapsed_ms,
//       budget_remaining_ms, metrics, spans, resource) at any nesting
//       depth. Used by the CI kill/resume soak job to check that a
//       crashed-and-resumed run reproduces the uninterrupted baseline
//       exactly.
//
//   bench_diff --validate-progress FILE...
//       Schema-validates `multiclust.progress` NDJSON streams written by
//       `discover_cli --progress=...`; exits 1 on the first invalid one.
//
//   bench_diff --validate-openmetrics FILE...
//       Structurally validates OpenMetrics expositions written by
//       `discover_cli --metrics-out=...`; exits 1 on the first invalid one.
//
// The committed BENCH_baseline.json is a merged --quick suite; regenerate
// it with the loop in EXPERIMENTS.md when results change intentionally.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/report.h"
#include "common/result.h"
#include "harness.h"

namespace {

using multiclust::Result;
using multiclust::Status;
using multiclust::bench::DiffOptions;
using multiclust::bench::DiffReport;

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "'");
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("read error on '" + path + "'");
  return out;
}

Result<multiclust::json::Value> LoadJson(const std::string& path) {
  auto content = ReadFile(path);
  if (!content.ok()) return content.status();
  auto parsed = multiclust::json::Parse(*content);
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.status().ToString());
  }
  return parsed;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_diff BASELINE CURRENT [--timing-band=F] "
               "[--timing-floor-ms=M]\n"
               "       bench_diff --validate FILE...\n"
               "       bench_diff --merge -o OUT FILE...\n"
               "       bench_diff --report BASELINE CURRENT\n"
               "       bench_diff --validate-progress FILE...\n"
               "       bench_diff --validate-openmetrics FILE...\n");
  return 2;
}

// Keys whose values depend on wall-clock time or host load and therefore
// cannot be bit-identical across a crash/resume pair. "resource" is the
// schema-v2 ResourceProfile: all timing/RSS/fault counts, and the resumed
// half of a crash/resume pair legitimately did less work.
bool IsWallClockKey(const std::string& key) {
  return key == "elapsed_ms" || key == "budget_remaining_ms" ||
         key == "metrics" || key == "spans" || key == "resource";
}

/// Recursive equality over report values, skipping wall-clock keys.
/// NaN == NaN (quality fields can legitimately be NaN on degenerate
/// clusterings, and bit-identical resume must reproduce that too).
/// On mismatch returns false with `*diff` set to a human-readable path.
bool ReportValuesEqual(const multiclust::json::Value& a,
                       const multiclust::json::Value& b,
                       const std::string& path, std::string* diff) {
  using multiclust::json::Value;
  if (a.type() != b.type()) {
    *diff = path + ": type mismatch";
    return false;
  }
  switch (a.type()) {
    case Value::Type::kNull:
      return true;
    case Value::Type::kBool:
      if (a.bool_value() != b.bool_value()) {
        *diff = path + ": " + (a.bool_value() ? "true" : "false") + " vs " +
                (b.bool_value() ? "true" : "false");
        return false;
      }
      return true;
    case Value::Type::kNumber: {
      const double x = a.number_value(), y = b.number_value();
      const bool both_nan = x != x && y != y;
      if (x != y && !both_nan) {
        *diff = path + ": " + multiclust::json::FormatDouble(x) + " vs " +
                multiclust::json::FormatDouble(y);
        return false;
      }
      return true;
    }
    case Value::Type::kString:
      if (a.string_value() != b.string_value()) {
        *diff = path + ": \"" + a.string_value() + "\" vs \"" +
                b.string_value() + "\"";
        return false;
      }
      return true;
    case Value::Type::kArray: {
      if (a.size() != b.size()) {
        *diff = path + ": array length " + std::to_string(a.size()) + " vs " +
                std::to_string(b.size());
        return false;
      }
      for (size_t i = 0; i < a.size(); ++i) {
        if (!ReportValuesEqual(a.array_items()[i], b.array_items()[i],
                               path + "[" + std::to_string(i) + "]", diff)) {
          return false;
        }
      }
      return true;
    }
    case Value::Type::kObject: {
      // Positional compare over wall-clock-filtered members: report JSON is
      // machine-generated with a deterministic key order, so an order change
      // is itself a difference worth flagging.
      std::vector<const std::pair<std::string, Value>*> am, bm;
      for (const auto& m : a.object_items()) {
        if (!IsWallClockKey(m.first)) am.push_back(&m);
      }
      for (const auto& m : b.object_items()) {
        if (!IsWallClockKey(m.first)) bm.push_back(&m);
      }
      if (am.size() != bm.size()) {
        *diff = path + ": object member count " + std::to_string(am.size()) +
                " vs " + std::to_string(bm.size());
        return false;
      }
      for (size_t i = 0; i < am.size(); ++i) {
        if (am[i]->first != bm[i]->first) {
          *diff = path + ": key \"" + am[i]->first + "\" vs \"" +
                  bm[i]->first + "\"";
          return false;
        }
        if (!ReportValuesEqual(am[i]->second, bm[i]->second,
                               path + "." + am[i]->first, diff)) {
          return false;
        }
      }
      return true;
    }
  }
  return true;
}

int RunReportCompare(const std::vector<std::string>& files) {
  if (files.size() != 2) return Usage();
  auto baseline = LoadJson(files[0]);
  auto current = LoadJson(files[1]);
  if (!baseline.ok() || !current.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!baseline.ok() ? baseline.status() : current.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  std::string diff;
  if (!ReportValuesEqual(*baseline, *current, "$", &diff)) {
    std::fprintf(stderr, "reports differ at %s\n", diff.c_str());
    return 1;
  }
  std::printf("reports identical (ignoring wall-clock fields)\n");
  return 0;
}

// Schema check for one `multiclust.progress` NDJSON stream as written by
// `discover_cli --progress=...`: every line parses as a JSON object with
// the right kind/version, required stamps present and monotonic, and the
// stream ends with exactly one terminal event.
Status ValidateProgressStream(const std::string& text) {
  size_t line_no = 0;
  size_t events = 0;
  double last_seq = -1.0;
  double last_elapsed = -1.0;
  bool saw_terminal = false;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    const std::string where = "line " + std::to_string(line_no);
    if (saw_terminal) {
      return Status::InvalidArgument(where + ": event after terminal event");
    }
    auto parsed = multiclust::json::Parse(line);
    if (!parsed.ok()) {
      return Status::InvalidArgument(where + ": " +
                                     parsed.status().ToString());
    }
    if (!parsed->is_object()) {
      return Status::InvalidArgument(where + ": not a JSON object");
    }
    if (parsed->GetString("kind", "") != "multiclust.progress") {
      return Status::InvalidArgument(where +
                                     ": kind != \"multiclust.progress\"");
    }
    const double version = parsed->GetNumber("schema_version", -1.0);
    if (version != 1.0) {
      return Status::InvalidArgument(where + ": unsupported schema_version");
    }
    const double seq = parsed->GetNumber("seq", -1.0);
    if (seq <= last_seq) {
      return Status::InvalidArgument(where + ": seq not increasing");
    }
    last_seq = seq;
    const double elapsed = parsed->GetNumber("elapsed_ms", -1.0);
    if (elapsed < 0.0 || elapsed + 1e-9 < last_elapsed) {
      return Status::InvalidArgument(where +
                                     ": elapsed_ms missing or decreasing");
    }
    last_elapsed = elapsed;
    if (parsed->GetString("stage", "").empty()) {
      return Status::InvalidArgument(where + ": missing stage");
    }
    const std::string phase = parsed->GetString("phase", "");
    if (phase != "start" && phase != "iteration" && phase != "end" &&
        phase != "complete" && phase != "error") {
      return Status::InvalidArgument(where + ": unknown phase \"" + phase +
                                     "\"");
    }
    if (parsed->GetBool("terminal", false)) saw_terminal = true;
    ++events;
  }
  if (events == 0) return Status::InvalidArgument("empty progress stream");
  if (!saw_terminal) {
    return Status::InvalidArgument("stream does not end in a terminal event");
  }
  return Status::OK();
}

// Structural check for an OpenMetrics exposition as written by
// `metrics::OpenMetricsText()`: `# TYPE`/`# EOF` comments, sample lines
// with legal metric-name characters and parseable values, terminated by
// `# EOF`.
Status ValidateOpenMetrics(const std::string& text) {
  size_t line_no = 0;
  bool saw_eof = false;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    const std::string where = "line " + std::to_string(line_no);
    if (saw_eof) {
      return Status::InvalidArgument(where + ": content after # EOF");
    }
    if (line == "# EOF") {
      saw_eof = true;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const size_t space = line.find(' ', 7);
      if (space == std::string::npos) {
        return Status::InvalidArgument(where + ": malformed # TYPE line");
      }
      const std::string type = line.substr(space + 1);
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "unknown") {
        return Status::InvalidArgument(where + ": unknown metric type \"" +
                                       type + "\"");
      }
      continue;
    }
    if (line[0] == '#') {
      return Status::InvalidArgument(where + ": unexpected comment");
    }
    // Sample line: name[{labels}] value
    size_t i = 0;
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) != 0 ||
            line[i] == '_' || line[i] == ':')) {
      ++i;
    }
    if (i == 0) {
      return Status::InvalidArgument(where + ": missing metric name");
    }
    if (i < line.size() && line[i] == '{') {
      const size_t close = line.find('}', i);
      if (close == std::string::npos) {
        return Status::InvalidArgument(where + ": unterminated label set");
      }
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      return Status::InvalidArgument(where + ": missing value separator");
    }
    const std::string value = line.substr(i + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    if (value.empty() || end == value.c_str() || *end != '\0') {
      return Status::InvalidArgument(where + ": unparseable value \"" +
                                     value + "\"");
    }
  }
  if (!saw_eof) {
    return Status::InvalidArgument("exposition does not end with # EOF");
  }
  return Status::OK();
}

int RunValidateWith(const std::vector<std::string>& files,
                    Status (*check)(const std::string&), const char* what) {
  if (files.empty()) return Usage();
  for (const std::string& path : files) {
    auto content = ReadFile(path);
    const Status st = content.ok() ? check(*content) : content.status();
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      return 1;
    }
    std::printf("%s: valid %s\n", path.c_str(), what);
  }
  return 0;
}

int RunValidate(const std::vector<std::string>& files) {
  if (files.empty()) return Usage();
  for (const std::string& path : files) {
    auto doc = LoadJson(path);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
      return 1;
    }
    const bool suite =
        doc->GetString("kind", "") == "multiclust.bench_suite";
    const Status st = suite ? multiclust::bench::ValidateSuiteDocument(*doc)
                            : multiclust::bench::ValidateBenchDocument(*doc);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      return 1;
    }
    std::printf("%s: valid %s document\n", path.c_str(),
                suite ? "suite" : "bench");
  }
  return 0;
}

int RunMerge(const std::string& out_path,
             const std::vector<std::string>& files) {
  if (out_path.empty() || files.empty()) return Usage();
  std::vector<multiclust::json::Value> docs;
  for (const std::string& path : files) {
    auto doc = LoadJson(path);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
      return 1;
    }
    const Status st = multiclust::bench::ValidateBenchDocument(*doc);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      return 1;
    }
    docs.push_back(std::move(*doc));
  }
  const std::string merged = multiclust::bench::MergeSuiteJson(docs);
  const Status st = multiclust::WriteStringToFile(out_path, merged);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("merged %zu documents into %s\n", docs.size(),
              out_path.c_str());
  return 0;
}

int RunCompare(const std::string& baseline_path,
               const std::string& current_path, const DiffOptions& options) {
  auto baseline = LoadJson(baseline_path);
  auto current = LoadJson(current_path);
  if (!baseline.ok() || !current.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!baseline.ok() ? baseline.status() : current.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  const bool base_suite =
      baseline->GetString("kind", "") == "multiclust.bench_suite";
  const bool cur_suite =
      current->GetString("kind", "") == "multiclust.bench_suite";
  if (base_suite != cur_suite) {
    std::fprintf(stderr,
                 "cannot compare a suite document with a single-bench "
                 "document (%s vs %s)\n",
                 baseline_path.c_str(), current_path.c_str());
    return 1;
  }
  const DiffReport report =
      base_suite
          ? multiclust::bench::DiffSuites(*baseline, *current, options)
          : multiclust::bench::DiffBenchDocuments(*baseline, *current,
                                                  options);
  std::fputs(report.ToString().c_str(), stdout);
  return report.failed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::string merge_out;
  bool validate = false, merge = false, report = false;
  bool validate_progress = false, validate_openmetrics = false;
  DiffOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--validate") == 0) {
      validate = true;
    } else if (std::strcmp(arg, "--merge") == 0) {
      merge = true;
    } else if (std::strcmp(arg, "--report") == 0) {
      report = true;
    } else if (std::strcmp(arg, "--validate-progress") == 0) {
      validate_progress = true;
    } else if (std::strcmp(arg, "--validate-openmetrics") == 0) {
      validate_openmetrics = true;
    } else if (std::strcmp(arg, "-o") == 0 && i + 1 < argc) {
      merge_out = argv[++i];
    } else if (std::strncmp(arg, "--timing-band=", 14) == 0) {
      options.timing_band = std::strtod(arg + 14, nullptr);
      if (options.timing_band < 1.0) return Usage();
    } else if (std::strncmp(arg, "--timing-floor-ms=", 18) == 0) {
      options.timing_floor_ms = std::strtod(arg + 18, nullptr);
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage();
      return 0;
    } else if (arg[0] == '-' && arg[1] != '\0') {
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (validate + merge + report + validate_progress + validate_openmetrics >
      1) {
    return Usage();
  }
  if (validate) return RunValidate(positional);
  if (merge) return RunMerge(merge_out, positional);
  if (report) return RunReportCompare(positional);
  if (validate_progress) {
    return RunValidateWith(positional, ValidateProgressStream,
                           "multiclust.progress stream");
  }
  if (validate_openmetrics) {
    return RunValidateWith(positional, ValidateOpenMetrics,
                           "OpenMetrics exposition");
  }
  if (positional.size() != 2) return Usage();
  return RunCompare(positional[0], positional[1], options);
}
