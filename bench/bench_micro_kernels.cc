// Micro-benchmarks (google-benchmark) of the hot kernels underneath the
// algorithms: pairwise distances, Jacobi eigendecomposition, one-sided
// Jacobi SVD, a Lloyd iteration, dense-unit mining and kernel matrices.
#include <benchmark/benchmark.h>

#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "common/rng.h"
#include "data/generators.h"
#include "linalg/decomposition.h"
#include "stats/grid.h"
#include "stats/hsic.h"

using namespace multiclust;

namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m.at(i, j) = rng.Gaussian(0, 1);
  }
  return m;
}

void BM_PairwiseDistances(benchmark::State& state) {
  const Matrix data = RandomMatrix(state.range(0), 8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PairwiseDistances(data));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PairwiseDistances)->Range(64, 512)->Complexity();

void BM_EigenSymmetric(benchmark::State& state) {
  const size_t n = state.range(0);
  Matrix a = RandomMatrix(n + 4, n, 2);
  Matrix spd = a.Transpose() * a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EigenSymmetric(spd));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EigenSymmetric)->Range(8, 128)->Complexity();

void BM_Svd(benchmark::State& state) {
  const Matrix a = RandomMatrix(state.range(0), state.range(0) / 2, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSvd(a));
  }
}
BENCHMARK(BM_Svd)->Range(16, 128);

void BM_KMeans(benchmark::State& state) {
  auto ds = MakeBlobs({{{0, 0, 0, 0}, 1.0, 200},
                       {{8, 0, 8, 0}, 1.0, 200},
                       {{0, 8, 0, 8}, 1.0, 200}},
                      4);
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 1;
  opts.seed = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKMeans(ds->data(), opts));
  }
}
BENCHMARK(BM_KMeans);

void BM_MineDenseUnits(benchmark::State& state) {
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 10.0, 0.6, ""};
  views[1] = {2, 3, 10.0, 0.6, ""};
  auto ds = MakeMultiView(300, views, state.range(0), 5);
  auto grid = Grid::Build(ds->data(), 8);
  const std::vector<size_t> thresholds(ds->num_dims() + 1, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineDenseUnits(*grid, thresholds, 3));
  }
}
BENCHMARK(BM_MineDenseUnits)->Arg(0)->Arg(2)->Arg(4);

void BM_GaussianKernelMatrix(benchmark::State& state) {
  const Matrix data = RandomMatrix(state.range(0), 6, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GaussianKernelMatrix(data, 0.5));
  }
}
BENCHMARK(BM_GaussianKernelMatrix)->Range(64, 512);

}  // namespace

BENCHMARK_MAIN();
