// Micro-benchmarks (google-benchmark) of the hot kernels underneath the
// algorithms: pairwise distances, Jacobi eigendecomposition, one-sided
// Jacobi SVD, a Lloyd iteration, dense-unit mining and kernel matrices.
//
// The harness flags (--json=PATH, --quick) are consumed before
// benchmark::Initialize, so the usual --benchmark_* flags still work.
// Every per-size timing lands in the JSON document as a timing scalar
// (bench_diff warns, never fails, on those).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "common/rng.h"
#include "data/generators.h"
#include "harness.h"
#include "linalg/decomposition.h"
#include "stats/grid.h"
#include "stats/hsic.h"

using namespace multiclust;

namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m.at(i, j) = rng.Gaussian(0, 1);
  }
  return m;
}

void BM_PairwiseDistances(benchmark::State& state) {
  const Matrix data = RandomMatrix(state.range(0), 8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PairwiseDistances(data));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PairwiseDistances)->Range(64, 512)->Complexity();

void BM_EigenSymmetric(benchmark::State& state) {
  const size_t n = state.range(0);
  Matrix a = RandomMatrix(n + 4, n, 2);
  Matrix spd = a.Transpose() * a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EigenSymmetric(spd));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EigenSymmetric)->Range(8, 128)->Complexity();

void BM_Svd(benchmark::State& state) {
  const Matrix a = RandomMatrix(state.range(0), state.range(0) / 2, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSvd(a));
  }
}
BENCHMARK(BM_Svd)->Range(16, 128);

void BM_KMeans(benchmark::State& state) {
  auto ds = MakeBlobs({{{0, 0, 0, 0}, 1.0, 200},
                       {{8, 0, 8, 0}, 1.0, 200},
                       {{0, 8, 0, 8}, 1.0, 200}},
                      4);
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 1;
  opts.seed = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKMeans(ds->data(), opts));
  }
}
BENCHMARK(BM_KMeans);

void BM_MineDenseUnits(benchmark::State& state) {
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 10.0, 0.6, ""};
  views[1] = {2, 3, 10.0, 0.6, ""};
  auto ds = MakeMultiView(300, views, state.range(0), 5);
  auto grid = Grid::Build(ds->data(), 8);
  const std::vector<size_t> thresholds(ds->num_dims() + 1, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineDenseUnits(*grid, thresholds, 3));
  }
}
BENCHMARK(BM_MineDenseUnits)->Arg(0)->Arg(2)->Arg(4);

void BM_GaussianKernelMatrix(benchmark::State& state) {
  const Matrix data = RandomMatrix(state.range(0), 6, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GaussianKernelMatrix(data, 0.5));
  }
}
BENCHMARK(BM_GaussianKernelMatrix)->Range(64, 512);

double TimeUnitToMs(benchmark::TimeUnit unit) {
  switch (unit) {
    case benchmark::kNanosecond:
      return 1e-6;
    case benchmark::kMicrosecond:
      return 1e-3;
    case benchmark::kMillisecond:
      return 1.0;
    case benchmark::kSecond:
      return 1e3;
  }
  return 1e-6;
}

// ConsoleReporter that additionally records every per-size iteration run
// into the harness as a timing scalar (aggregates and BigO fits skipped).
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(bench::Harness* harness) : harness_(harness) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.report_big_o ||
          run.report_rms) {
        continue;
      }
      if (run.error_occurred) {
        ++errors_;
        continue;
      }
      harness_->Timing(run.benchmark_name() + "_ms",
                       run.GetAdjustedRealTime() * TimeUnitToMs(run.time_unit));
      ++recorded_;
    }
    ConsoleReporter::ReportRuns(runs);
  }

  size_t recorded() const { return recorded_; }
  size_t errors() const { return errors_; }

 private:
  bench::Harness* harness_;
  size_t recorded_ = 0;
  size_t errors_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_micro_kernels",
                   "micro-benchmarks of the hot kernels");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.01";
  if (h.quick()) args.push_back(min_time.data());
  args.push_back(nullptr);
  int bench_argc = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }

  CapturingReporter reporter(&h);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // 2+3+3+1+3+2 registered (name, size) combinations — a registration
  // that silently disappears should fail the diff, not just shrink it.
  h.Scalar("benchmarks_recorded", static_cast<double>(reporter.recorded()));
  h.Check("all_microbenchmarks_ran",
          reporter.recorded() == 14 && reporter.errors() == 0,
          "all 14 registered micro-benchmark cases must run without error");
  return h.Finish();
}
