// Micro-benchmarks (google-benchmark) of the hot kernels underneath the
// algorithms: pairwise distances, Jacobi eigendecomposition, one-sided
// Jacobi SVD, a Lloyd iteration, dense-unit mining and kernel matrices.
//
// The harness flags (--json=PATH, --quick) are consumed before
// benchmark::Initialize, so the usual --benchmark_* flags still work.
// Every per-size timing lands in the JSON document as a timing scalar
// (bench_diff warns, never fails, on those).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "common/rng.h"
#include "data/generators.h"
#include "harness.h"
#include "linalg/decomposition.h"
#include "linalg/kernels.h"
#include "stats/grid.h"
#include "stats/hsic.h"

using namespace multiclust;

namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m.at(i, j) = rng.Gaussian(0, 1);
  }
  return m;
}

void BM_PairwiseDistances(benchmark::State& state) {
  const Matrix data = RandomMatrix(state.range(0), 8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PairwiseDistances(data));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PairwiseDistances)->Range(64, 512)->Complexity();

void BM_EigenSymmetric(benchmark::State& state) {
  const size_t n = state.range(0);
  Matrix a = RandomMatrix(n + 4, n, 2);
  Matrix spd = a.Transpose() * a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EigenSymmetric(spd));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EigenSymmetric)->Range(8, 128)->Complexity();

void BM_Svd(benchmark::State& state) {
  const Matrix a = RandomMatrix(state.range(0), state.range(0) / 2, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSvd(a));
  }
}
BENCHMARK(BM_Svd)->Range(16, 128);

void BM_KMeans(benchmark::State& state) {
  auto ds = MakeBlobs({{{0, 0, 0, 0}, 1.0, 200},
                       {{8, 0, 8, 0}, 1.0, 200},
                       {{0, 8, 0, 8}, 1.0, 200}},
                      4);
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 1;
  opts.seed = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKMeans(ds->data(), opts));
  }
}
BENCHMARK(BM_KMeans);

void BM_MineDenseUnits(benchmark::State& state) {
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 10.0, 0.6, ""};
  views[1] = {2, 3, 10.0, 0.6, ""};
  auto ds = MakeMultiView(300, views, state.range(0), 5);
  auto grid = Grid::Build(ds->data(), 8);
  const std::vector<size_t> thresholds(ds->num_dims() + 1, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineDenseUnits(*grid, thresholds, 3));
  }
}
BENCHMARK(BM_MineDenseUnits)->Arg(0)->Arg(2)->Arg(4);

void BM_GaussianKernelMatrix(benchmark::State& state) {
  const Matrix data = RandomMatrix(state.range(0), 6, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GaussianKernelMatrix(data, 0.5));
  }
}
BENCHMARK(BM_GaussianKernelMatrix)->Range(64, 512);

double TimeUnitToMs(benchmark::TimeUnit unit) {
  switch (unit) {
    case benchmark::kNanosecond:
      return 1e-6;
    case benchmark::kMicrosecond:
      return 1e-3;
    case benchmark::kMillisecond:
      return 1.0;
    case benchmark::kSecond:
      return 1e3;
  }
  return 1e-6;
}

// ConsoleReporter that additionally records every per-size iteration run
// into the harness as a timing scalar (aggregates and BigO fits skipped).
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(bench::Harness* harness) : harness_(harness) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.report_big_o ||
          run.report_rms) {
        continue;
      }
      if (run.error_occurred) {
        ++errors_;
        continue;
      }
      harness_->Timing(run.benchmark_name() + "_ms",
                       run.GetAdjustedRealTime() * TimeUnitToMs(run.time_unit));
      ++recorded_;
    }
    ConsoleReporter::ReportRuns(runs);
  }

  size_t recorded() const { return recorded_; }
  size_t errors() const { return errors_; }

 private:
  bench::Harness* harness_;
  size_t recorded_ = 0;
  size_t errors_ = 0;
};

// --- Kernel-layer GFLOP/s: scalar (kernels::ref) vs SIMD (kernels::) ----
//
// Direct chrono timings of the vectorized kernel layer against its
// forced-scalar instantiation, reported as GFLOP/s plus a speedup ratio.
// All of these are host-dependent: registered with timing=true so
// bench_diff warns (never fails) on drift, and the >=2x expectations are
// warn-checks for the same reason.

// Host-dependent scalar with a non-ms unit (ValueOptions::Timing pins
// "ms"; these are GFLOP/s and ratios).
bench::ValueOptions HostDependent(const char* unit) {
  bench::ValueOptions o;
  o.unit = unit;
  o.timing = true;
  return o;
}

// Best-of-3 wall time of `calls` invocations of `fn`, in seconds.
template <typename Fn>
double BestSeconds(size_t calls, Fn fn) {
  double best = 1e300;
  fn();  // warm caches and the branch predictor
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t c = 0; c < calls; ++c) fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// Unblocked, unvectorized i-j-k triple loop: the "what a straightforward
// implementation does" baseline for the GEMM comparison.
void NaiveGemm(const double* a, size_t m, size_t kdim, const double* b,
               size_t n, double* c) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < kdim; ++k) acc += a[i * kdim + k] * b[k * n + j];
      c[i * n + j] = acc;
    }
  }
}

void RecordKernelGflops(bench::Harness* h, bool quick) {
  Rng rng(99);
  const size_t n = 8192;
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Gaussian(0, 1);
    y[i] = rng.Gaussian(0, 1);
  }
  const size_t vec_calls = quick ? 500 : 2000;
  double sink = 0.0;

  struct VecKernel {
    const char* name;
    double flops_per_call;
    double (*fast)(const double*, const double*, size_t);
    double (*ref)(const double*, const double*, size_t);
  };
  const VecKernel vec_kernels[] = {
      {"dot", 2.0 * n, &kernels::Dot, &kernels::ref::Dot},
      {"squared_distance", 3.0 * n, &kernels::SquaredDistance,
       &kernels::ref::SquaredDistance},
  };
  for (const VecKernel& kn : vec_kernels) {
    const double fast_s = BestSeconds(vec_calls, [&] {
      sink += kn.fast(x.data(), y.data(), n);
      benchmark::DoNotOptimize(sink);
    });
    const double ref_s = BestSeconds(vec_calls, [&] {
      sink += kn.ref(x.data(), y.data(), n);
      benchmark::DoNotOptimize(sink);
    });
    const double work = kn.flops_per_call * static_cast<double>(vec_calls);
    const double fast_gflops = work / fast_s / 1e9;
    const double ref_gflops = work / ref_s / 1e9;
    const double speedup = ref_s / fast_s;
    const std::string base = std::string("kernel_") + kn.name;
    h->Scalar(base + "_scalar_gflops", ref_gflops, HostDependent("GFLOP/s"));
    h->Scalar(base + "_simd_gflops", fast_gflops, HostDependent("GFLOP/s"));
    h->Scalar(base + "_speedup", speedup, HostDependent("x"));
  }

  // GEMM: naive triple loop vs blocked-scalar (ref) vs blocked+SIMD
  // (fast), at a size that crosses the cache-blocking panel boundaries.
  const size_t m = 96, kdim = 160, ncols = 600;
  std::vector<double> a(m * kdim), b(kdim * ncols), c(m * ncols);
  for (double& v : a) v = rng.Gaussian(0, 1);
  for (double& v : b) v = rng.Gaussian(0, 1);
  const size_t gemm_calls = quick ? 3 : 10;
  const double gemm_work = 2.0 * static_cast<double>(m) *
                           static_cast<double>(kdim) *
                           static_cast<double>(ncols) *
                           static_cast<double>(gemm_calls);
  const double naive_s = BestSeconds(gemm_calls, [&] {
    NaiveGemm(a.data(), m, kdim, b.data(), ncols, c.data());
    benchmark::DoNotOptimize(c.data());
  });
  const double ref_s = BestSeconds(gemm_calls, [&] {
    std::fill(c.begin(), c.end(), 0.0);  // GemmRows accumulates
    kernels::ref::GemmRows(a.data(), kdim, b.data(), ncols, c.data(), 0, m);
    benchmark::DoNotOptimize(c.data());
  });
  const double fast_s = BestSeconds(gemm_calls, [&] {
    std::fill(c.begin(), c.end(), 0.0);
    kernels::GemmRows(a.data(), kdim, b.data(), ncols, c.data(), 0, m);
    benchmark::DoNotOptimize(c.data());
  });
  h->Scalar("kernel_gemm_naive_gflops", gemm_work / naive_s / 1e9,
            HostDependent("GFLOP/s"));
  h->Scalar("kernel_gemm_blocked_scalar_gflops", gemm_work / ref_s / 1e9,
            HostDependent("GFLOP/s"));
  h->Scalar("kernel_gemm_simd_gflops", gemm_work / fast_s / 1e9,
            HostDependent("GFLOP/s"));
  // Two ratios: _simd_speedup isolates the SIMD gain (blocked-scalar vs
  // blocked+SIMD, same blocking); _speedup is the whole kernel-layer gain
  // over the straightforward triple loop the library used before (which
  // the compiler still auto-vectorizes at the baseline -march, so it is
  // a conservative baseline, not a strawman).
  h->Scalar("kernel_gemm_simd_speedup", ref_s / fast_s, HostDependent("x"));
  const double gemm_speedup = naive_s / fast_s;
  h->Scalar("kernel_gemm_speedup", gemm_speedup, HostDependent("x"));

  // The acceptance bar for the SIMD layer on an AVX2 host. Host-dependent
  // by nature (warn-only): a scalar-only build or a loaded machine must
  // not fail CI.
  const bool simd_on = kernels::Info().compiled_simd;
  const double sq_speedup =
      h->ScalarValue("kernel_squared_distance_speedup", 0.0);
  h->WarnCheck("squared_distance_speedup_2x", !simd_on || sq_speedup >= 2.0,
               "SIMD squared-distance should be >=2x the scalar kernel "
               "(got " + std::to_string(sq_speedup) + "x)");
  h->WarnCheck("gemm_speedup_2x", !simd_on || gemm_speedup >= 2.0,
               "blocked+SIMD GEMM should be >=2x the naive triple loop "
               "(got " + std::to_string(gemm_speedup) + "x)");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_micro_kernels",
                   "micro-benchmarks of the hot kernels");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.01";
  if (h.quick()) args.push_back(min_time.data());
  args.push_back(nullptr);
  int bench_argc = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }

  CapturingReporter reporter(&h);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  RecordKernelGflops(&h, h.quick());

  // 2+3+3+1+3+2 registered (name, size) combinations — a registration
  // that silently disappears should fail the diff, not just shrink it.
  h.Scalar("benchmarks_recorded", static_cast<double>(reporter.recorded()));
  h.Check("all_microbenchmarks_ran",
          reporter.recorded() == 14 && reporter.errors() == 0,
          "all 14 registered micro-benchmark cases must run without error");
  return h.Finish();
}
