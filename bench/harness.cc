#include "harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/parallel.h"
#include "common/report.h"
#include "linalg/kernels.h"

namespace multiclust {
namespace bench {

Harness::Harness(std::string id, std::string title)
    : id_(std::move(id)), title_(std::move(title)) {}

bool Harness::ParseArgs(int* argc, char** argv) {
  int out = 1;
  bool ok = true;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path_ = arg + 7;
      if (json_path_.empty()) {
        std::fprintf(stderr, "%s: --json needs a path\n", id_.c_str());
        exit_code_ = 2;
        ok = false;
      }
    } else if (std::strcmp(arg, "--quick") == 0) {
      quick_ = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::printf(
          "%s — %s\n\n"
          "  --json=PATH  write the machine-readable result document\n"
          "  --quick      reduced-size workload (CI / baseline mode)\n"
          "Other flags are passed through to the binary.\n",
          id_.c_str(), title_.c_str());
      exit_code_ = 0;
      ok = false;
    } else {
      argv[out++] = argv[i];  // leave for the caller's own parser
    }
  }
  *argc = out;
  return ok;
}

void Harness::Scalar(const std::string& name, double value,
                     const ValueOptions& options) {
  for (ScalarResult& s : scalars_) {
    if (s.name == name) {
      s.value = value;
      s.options = options;
      return;
    }
  }
  scalars_.push_back({name, value, options});
}

void Harness::Timing(const std::string& name, double ms) {
  Scalar(name, ms, ValueOptions::Timing());
}

double Harness::ScalarValue(const std::string& name, double def) const {
  for (const ScalarResult& s : scalars_) {
    if (s.name == name) return s.value;
  }
  return def;
}

Series* Harness::AddSeries(const std::string& name, const std::string& x_name,
                           const std::string& y_name,
                           const ValueOptions& options) {
  series_.push_back(std::make_unique<Series>());
  Series& s = *series_.back();
  s.name_ = name;
  s.x_name_ = x_name;
  s.y_name_ = y_name;
  s.options_ = options;
  return &s;
}

Table* Harness::AddTable(const std::string& name,
                         const std::vector<std::string>& columns,
                         const ValueOptions& options) {
  tables_.push_back(std::make_unique<Table>());
  Table& t = *tables_.back();
  t.name_ = name;
  t.options_ = options;
  t.columns_ = columns;
  return &t;
}

void Harness::Check(const std::string& name, bool passed,
                    const std::string& detail) {
  checks_.push_back({name, passed, /*hard=*/true, detail});
}

void Harness::WarnCheck(const std::string& name, bool passed,
                        const std::string& detail) {
  checks_.push_back({name, passed, /*hard=*/false, detail});
}

std::string Harness::DocumentJson() const {
  json::Writer w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(1);
  w.Key("kind");
  w.String("multiclust.bench");
  w.Key("bench");
  w.String(id_);
  w.Key("title");
  w.String(title_);
  w.Key("quick");
  w.Bool(quick_);

  // Hardware context: timing numbers (and SIMD speedup ratios) are only
  // comparable between documents recorded on matching hosts; bench_diff
  // warns when these fields differ.
  {
    const kernels::SimdInfo simd = kernels::Info();
    w.Key("host");
    w.BeginObject();
    w.Key("logical_cores");
    w.Int(static_cast<int64_t>(std::thread::hardware_concurrency()));
    w.Key("threads");
    w.Int(static_cast<int64_t>(ThreadCount()));
    w.Key("isa");
    w.String(kernels::RuntimeIsa());
    w.Key("simd_backend");
    w.String(simd.backend);
    w.Key("simd_compiled");
    w.Bool(simd.compiled_simd);
    w.Key("double_lanes");
    w.Int(simd.double_lanes);
    w.Key("float_lanes");
    w.Int(simd.float_lanes);
    w.EndObject();
  }

  // What this bench process cost, harness construction to here. Absent
  // when telemetry compiles out; wall-clock-dependent, so bench_diff never
  // compares it.
  {
    const telemetry::ResourceProfile resource = resource_scope_.Snapshot();
    if (resource.captured) {
      w.Key("resource");
      AppendResourceProfile(resource, &w);
    }
  }

  w.Key("scalars");
  w.BeginArray();
  for (const ScalarResult& s : scalars_) {
    w.BeginObject();
    w.Key("name");
    w.String(s.name);
    w.Key("value");
    w.Double(s.value);
    w.Key("unit");
    w.String(s.options.unit);
    w.Key("timing");
    w.Bool(s.options.timing);
    w.Key("tol_rel");
    w.Double(s.options.tol_rel);
    w.Key("tol_abs");
    w.Double(s.options.tol_abs);
    w.EndObject();
  }
  w.EndArray();

  w.Key("series");
  w.BeginArray();
  for (const auto& sp : series_) {
    const Series& s = *sp;
    w.BeginObject();
    w.Key("name");
    w.String(s.name_);
    w.Key("x_name");
    w.String(s.x_name_);
    w.Key("y_name");
    w.String(s.y_name_);
    w.Key("unit");
    w.String(s.options_.unit);
    w.Key("timing");
    w.Bool(s.options_.timing);
    w.Key("tol_rel");
    w.Double(s.options_.tol_rel);
    w.Key("tol_abs");
    w.Double(s.options_.tol_abs);
    w.Key("points");
    w.BeginArray();
    for (const auto& [x, y] : s.points_) {
      w.BeginArray();
      w.Double(x);
      w.Double(y);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.Key("tables");
  w.BeginArray();
  for (const auto& tp : tables_) {
    const Table& t = *tp;
    w.BeginObject();
    w.Key("name");
    w.String(t.name_);
    w.Key("timing");
    w.Bool(t.options_.timing);
    w.Key("tol_rel");
    w.Double(t.options_.tol_rel);
    w.Key("tol_abs");
    w.Double(t.options_.tol_abs);
    w.Key("columns");
    w.BeginArray();
    for (const std::string& c : t.columns_) w.String(c);
    w.EndArray();
    w.Key("rows");
    w.BeginArray();
    for (const auto& row : t.rows_) {
      w.BeginArray();
      for (const Table::CellValue& cell : row) {
        if (cell.is_number) {
          w.Double(cell.number);
        } else {
          w.String(cell.text);
        }
      }
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.Key("checks");
  w.BeginArray();
  for (const CheckResult& c : checks_) {
    w.BeginObject();
    w.Key("name");
    w.String(c.name);
    w.Key("passed");
    w.Bool(c.passed);
    w.Key("severity");
    w.String(c.hard ? "hard" : "warn");
    w.Key("detail");
    w.String(c.detail);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::string out = std::move(w).str();
  out += '\n';
  return out;
}

int Harness::Finish() {
  size_t hard_failed = 0, warn_failed = 0, passed = 0;
  for (const CheckResult& c : checks_) {
    if (c.passed) {
      ++passed;
    } else if (c.hard) {
      ++hard_failed;
    } else {
      ++warn_failed;
    }
  }
  if (!checks_.empty()) {
    std::printf("\n[harness] %s: %zu/%zu checks passed", id_.c_str(), passed,
                checks_.size());
    if (warn_failed > 0) {
      std::printf(" (%zu warn-only failures)", warn_failed);
    }
    std::printf("\n");
    for (const CheckResult& c : checks_) {
      if (!c.passed) {
        std::printf("[harness]   %s %s: %s\n", c.hard ? "FAIL" : "warn",
                    c.name.c_str(), c.detail.c_str());
      }
    }
  }
  if (!json_path_.empty()) {
    const Status st = WriteStringToFile(json_path_, DocumentJson());
    if (!st.ok()) {
      std::fprintf(stderr, "[harness] %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("[harness] wrote %s\n", json_path_.c_str());
  }
  return hard_failed > 0 ? 1 : 0;
}

// --- Validation. ---

namespace {

Status Expect(bool ok, const std::string& what) {
  if (!ok) return Status::InvalidArgument("bench document: " + what);
  return Status::OK();
}

Status ValidateValueOptions(const json::Value& entry, const char* where) {
  MC_RETURN_IF_ERROR(Expect(entry.Find("timing") != nullptr &&
                                entry.Find("timing")->is_bool(),
                            std::string(where) + ": missing bool 'timing'"));
  MC_RETURN_IF_ERROR(Expect(entry.Find("tol_rel") != nullptr &&
                                entry.Find("tol_rel")->is_number(),
                            std::string(where) + ": missing 'tol_rel'"));
  MC_RETURN_IF_ERROR(Expect(entry.Find("tol_abs") != nullptr &&
                                entry.Find("tol_abs")->is_number(),
                            std::string(where) + ": missing 'tol_abs'"));
  return Status::OK();
}

}  // namespace

Status ValidateBenchDocument(const json::Value& doc) {
  MC_RETURN_IF_ERROR(Expect(doc.is_object(), "not an object"));
  MC_RETURN_IF_ERROR(
      Expect(doc.GetNumber("schema_version", 0) == 1, "schema_version != 1"));
  MC_RETURN_IF_ERROR(Expect(doc.GetString("kind", "") == "multiclust.bench",
                            "kind != multiclust.bench"));
  MC_RETURN_IF_ERROR(Expect(!doc.GetString("bench", "").empty(),
                            "missing 'bench' id"));
  MC_RETURN_IF_ERROR(Expect(doc.Find("quick") != nullptr &&
                                doc.Find("quick")->is_bool(),
                            "missing bool 'quick'"));
  // 'host' is optional (documents predating the hardware-context envelope
  // stay valid) but must be an object when present.
  if (const json::Value* host = doc.Find("host")) {
    MC_RETURN_IF_ERROR(Expect(host->is_object(), "'host' must be an object"));
  }
  // 'resource' is optional (absent when telemetry compiles out) but must
  // be an object of numbers when present.
  if (const json::Value* resource = doc.Find("resource")) {
    MC_RETURN_IF_ERROR(
        Expect(resource->is_object(), "'resource' must be an object"));
    for (const auto& member : resource->object_items()) {
      MC_RETURN_IF_ERROR(Expect(member.second.is_number(),
                                "resource field '" + member.first +
                                    "' must be a number"));
    }
  }
  for (const char* section : {"scalars", "series", "tables", "checks"}) {
    const json::Value* v = doc.Find(section);
    MC_RETURN_IF_ERROR(Expect(v != nullptr && v->is_array(),
                              std::string("missing array '") + section + "'"));
  }
  for (const json::Value& s : doc.Find("scalars")->array_items()) {
    MC_RETURN_IF_ERROR(Expect(s.is_object() && !s.GetString("name", "").empty(),
                              "scalar without name"));
    const json::Value* value = s.Find("value");
    MC_RETURN_IF_ERROR(Expect(value != nullptr &&
                                  (value->is_number() || value->is_null()),
                              "scalar '" + s.GetString("name", "") +
                                  "': value must be number or null"));
    MC_RETURN_IF_ERROR(ValidateValueOptions(s, "scalar"));
  }
  for (const json::Value& s : doc.Find("series")->array_items()) {
    MC_RETURN_IF_ERROR(Expect(s.is_object() && !s.GetString("name", "").empty(),
                              "series without name"));
    MC_RETURN_IF_ERROR(ValidateValueOptions(s, "series"));
    const json::Value* points = s.Find("points");
    MC_RETURN_IF_ERROR(Expect(points != nullptr && points->is_array(),
                              "series '" + s.GetString("name", "") +
                                  "': missing points array"));
    for (const json::Value& p : points->array_items()) {
      MC_RETURN_IF_ERROR(Expect(p.is_array() && p.size() == 2,
                                "series '" + s.GetString("name", "") +
                                    "': point is not an [x,y] pair"));
    }
  }
  for (const json::Value& t : doc.Find("tables")->array_items()) {
    MC_RETURN_IF_ERROR(Expect(t.is_object() && !t.GetString("name", "").empty(),
                              "table without name"));
    const json::Value* columns = t.Find("columns");
    const json::Value* rows = t.Find("rows");
    MC_RETURN_IF_ERROR(Expect(columns != nullptr && columns->is_array() &&
                                  rows != nullptr && rows->is_array(),
                              "table '" + t.GetString("name", "") +
                                  "': missing columns/rows"));
    for (const json::Value& row : rows->array_items()) {
      MC_RETURN_IF_ERROR(Expect(row.is_array() &&
                                    row.size() == columns->size(),
                                "table '" + t.GetString("name", "") +
                                    "': row width != column count"));
    }
  }
  for (const json::Value& c : doc.Find("checks")->array_items()) {
    MC_RETURN_IF_ERROR(Expect(c.is_object() && !c.GetString("name", "").empty(),
                              "check without name"));
    MC_RETURN_IF_ERROR(Expect(c.Find("passed") != nullptr &&
                                  c.Find("passed")->is_bool(),
                              "check '" + c.GetString("name", "") +
                                  "': missing bool 'passed'"));
    const std::string severity = c.GetString("severity", "");
    MC_RETURN_IF_ERROR(Expect(severity == "hard" || severity == "warn",
                              "check '" + c.GetString("name", "") +
                                  "': severity must be hard|warn"));
  }
  return Status::OK();
}

Status ValidateSuiteDocument(const json::Value& doc) {
  MC_RETURN_IF_ERROR(Expect(doc.is_object(), "suite: not an object"));
  MC_RETURN_IF_ERROR(Expect(doc.GetNumber("schema_version", 0) == 1,
                            "suite: schema_version != 1"));
  MC_RETURN_IF_ERROR(
      Expect(doc.GetString("kind", "") == "multiclust.bench_suite",
             "suite: kind != multiclust.bench_suite"));
  const json::Value* benches = doc.Find("benches");
  MC_RETURN_IF_ERROR(Expect(benches != nullptr && benches->is_array(),
                            "suite: missing 'benches' array"));
  for (const json::Value& b : benches->array_items()) {
    MC_RETURN_IF_ERROR(ValidateBenchDocument(b));
  }
  return Status::OK();
}

std::string MergeSuiteJson(const std::vector<json::Value>& docs) {
  // Re-serialize each member document from its parsed form; sort by bench
  // id so the merged suite is independent of input order.
  struct Member {
    std::string id;
    std::string raw;
  };
  std::vector<Member> members;
  for (const json::Value& doc : docs) {
    json::Writer one;
    json::SerializeValue(doc, &one);
    members.push_back({doc.GetString("bench", ""), std::move(one).str()});
  }
  std::sort(members.begin(), members.end(),
            [](const Member& a, const Member& b) { return a.id < b.id; });
  json::Writer w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(1);
  w.Key("kind");
  w.String("multiclust.bench_suite");
  w.Key("benches");
  w.BeginArray();
  for (const Member& m : members) w.Raw(m.raw);
  w.EndArray();
  w.EndObject();
  std::string out = std::move(w).str();
  out += '\n';
  return out;
}

// --- Diff engine. ---

namespace {

const json::Value* FindByName(const json::Value& array,
                              const std::string& name) {
  if (!array.is_array()) return nullptr;
  for (const json::Value& entry : array.array_items()) {
    if (entry.GetString("name", "") == name) return &entry;
  }
  return nullptr;
}

bool WithinTolerance(double base, double cur, double tol_rel, double tol_abs) {
  if (std::isnan(base) && std::isnan(cur)) return true;
  const double diff = std::fabs(cur - base);
  return diff <= tol_abs + tol_rel * std::max(std::fabs(base),
                                              std::fabs(cur));
}

struct DiffContext {
  const DiffOptions* options;
  std::string prefix;  // "bench_x: "
  DiffReport* report;

  void Fail(const std::string& msg) {
    report->failures.push_back(prefix + msg);
  }
  void Warn(const std::string& msg) {
    report->warnings.push_back(prefix + msg);
  }
};

std::string Num(double v) { return json::FormatDouble(v); }

void DiffTimingValue(DiffContext* ctx, const std::string& what, double base,
                     double cur) {
  const DiffOptions& o = *ctx->options;
  if (base < o.timing_floor_ms && cur < o.timing_floor_ms) return;
  const double lo = base / o.timing_band;
  const double hi = base * o.timing_band;
  if (cur < lo || cur > hi) {
    ctx->Warn(what + ": timing drifted " + Num(base) + " -> " + Num(cur) +
              " ms (band x" + Num(o.timing_band) + "; warn-only)");
  }
  ++ctx->report->compared;
}

void DiffValue(DiffContext* ctx, const std::string& what, double base,
               double cur, double tol_rel, double tol_abs) {
  if (!WithinTolerance(base, cur, tol_rel, tol_abs)) {
    ctx->Fail(what + ": " + Num(base) + " -> " + Num(cur) +
              " (tol_rel=" + Num(tol_rel) + ", tol_abs=" + Num(tol_abs) + ")");
  }
  ++ctx->report->compared;
}

void DiffScalars(DiffContext* ctx, const json::Value& base,
                 const json::Value& cur) {
  const json::Value* base_list = base.Find("scalars");
  const json::Value* cur_list = cur.Find("scalars");
  for (const json::Value& b : base_list->array_items()) {
    const std::string name = b.GetString("name", "");
    const json::Value* c = FindByName(*cur_list, name);
    if (c == nullptr) {
      ctx->Fail("scalar '" + name + "' missing from current run");
      continue;
    }
    const bool timing = b.GetBool("timing", false);
    const double bv = b.GetNumber("value", NAN);
    const double cv = c->GetNumber("value", NAN);
    if (timing) {
      DiffTimingValue(ctx, "scalar '" + name + "'", bv, cv);
    } else {
      DiffValue(ctx, "scalar '" + name + "'", bv, cv,
                b.GetNumber("tol_rel", 0.0), b.GetNumber("tol_abs", 0.0));
    }
  }
  for (const json::Value& c : cur_list->array_items()) {
    const std::string name = c.GetString("name", "");
    if (FindByName(*base_list, name) == nullptr) {
      ctx->Warn("scalar '" + name + "' not in baseline (regenerate it)");
    }
  }
}

void DiffSeriesEntry(DiffContext* ctx, const json::Value& b,
                     const json::Value& c) {
  const std::string name = b.GetString("name", "");
  const bool timing = b.GetBool("timing", false);
  const double tol_rel = b.GetNumber("tol_rel", 0.0);
  const double tol_abs = b.GetNumber("tol_abs", 0.0);
  const auto& bp = b.Find("points")->array_items();
  const auto& cp = c.Find("points")->array_items();
  if (bp.size() != cp.size()) {
    const std::string msg = "series '" + name + "': point count " +
                            std::to_string(bp.size()) + " -> " +
                            std::to_string(cp.size());
    if (timing) {
      ctx->Warn(msg);
    } else {
      ctx->Fail(msg);
    }
    return;
  }
  for (size_t i = 0; i < bp.size(); ++i) {
    const double bx = bp[i].array_items()[0].NumberOr(NAN);
    const double cx = cp[i].array_items()[0].NumberOr(NAN);
    if (!WithinTolerance(bx, cx, tol_rel, tol_abs)) {
      ctx->Fail("series '" + name + "' point " + std::to_string(i) +
                ": x grid changed " + Num(bx) + " -> " + Num(cx));
      continue;
    }
    const double by = bp[i].array_items()[1].NumberOr(NAN);
    const double cy = cp[i].array_items()[1].NumberOr(NAN);
    const std::string what =
        "series '" + name + "' at x=" + Num(bx);
    if (timing) {
      DiffTimingValue(ctx, what, by, cy);
    } else {
      DiffValue(ctx, what, by, cy, tol_rel, tol_abs);
    }
  }
}

void DiffSeriesSection(DiffContext* ctx, const json::Value& base,
                       const json::Value& cur) {
  const json::Value* base_list = base.Find("series");
  const json::Value* cur_list = cur.Find("series");
  for (const json::Value& b : base_list->array_items()) {
    const std::string name = b.GetString("name", "");
    const json::Value* c = FindByName(*cur_list, name);
    if (c == nullptr) {
      ctx->Fail("series '" + name + "' missing from current run");
      continue;
    }
    DiffSeriesEntry(ctx, b, *c);
  }
  for (const json::Value& c : cur_list->array_items()) {
    if (FindByName(*base_list, c.GetString("name", "")) == nullptr) {
      ctx->Warn("series '" + c.GetString("name", "") +
                "' not in baseline (regenerate it)");
    }
  }
}

void DiffTables(DiffContext* ctx, const json::Value& base,
                const json::Value& cur) {
  const json::Value* base_list = base.Find("tables");
  const json::Value* cur_list = cur.Find("tables");
  for (const json::Value& b : base_list->array_items()) {
    const std::string name = b.GetString("name", "");
    const json::Value* c = FindByName(*cur_list, name);
    if (c == nullptr) {
      ctx->Fail("table '" + name + "' missing from current run");
      continue;
    }
    const bool timing = b.GetBool("timing", false);
    const double tol_rel = b.GetNumber("tol_rel", 0.0);
    const double tol_abs = b.GetNumber("tol_abs", 0.0);
    const auto& br = b.Find("rows")->array_items();
    const auto& cr = c->Find("rows")->array_items();
    if (br.size() != cr.size()) {
      ctx->Fail("table '" + name + "': row count " +
                std::to_string(br.size()) + " -> " +
                std::to_string(cr.size()));
      continue;
    }
    for (size_t r = 0; r < br.size(); ++r) {
      const auto& brow = br[r].array_items();
      const auto& crow = cr[r].array_items();
      if (brow.size() != crow.size()) {
        ctx->Fail("table '" + name + "' row " + std::to_string(r) +
                  ": width changed");
        continue;
      }
      for (size_t col = 0; col < brow.size(); ++col) {
        const std::string what = "table '" + name + "' cell [" +
                                 std::to_string(r) + "," +
                                 std::to_string(col) + "]";
        if (brow[col].is_string() || crow[col].is_string()) {
          if (!brow[col].is_string() || !crow[col].is_string() ||
              brow[col].string_value() != crow[col].string_value()) {
            ctx->Fail(what + ": text cell changed");
          }
          ++ctx->report->compared;
        } else if (timing) {
          DiffTimingValue(ctx, what, brow[col].NumberOr(NAN),
                          crow[col].NumberOr(NAN));
        } else {
          DiffValue(ctx, what, brow[col].NumberOr(NAN),
                    crow[col].NumberOr(NAN), tol_rel, tol_abs);
        }
      }
    }
  }
  for (const json::Value& c : cur_list->array_items()) {
    if (FindByName(*base_list, c.GetString("name", "")) == nullptr) {
      ctx->Warn("table '" + c.GetString("name", "") +
                "' not in baseline (regenerate it)");
    }
  }
}

void DiffChecks(DiffContext* ctx, const json::Value& base,
                const json::Value& cur) {
  const json::Value* base_list = base.Find("checks");
  const json::Value* cur_list = cur.Find("checks");
  for (const json::Value& c : cur_list->array_items()) {
    const std::string name = c.GetString("name", "");
    const bool hard = c.GetString("severity", "hard") == "hard";
    if (!c.GetBool("passed", false)) {
      const std::string msg =
          "check '" + name + "' failed: " + c.GetString("detail", "");
      if (hard) {
        ctx->Fail(msg);
      } else {
        ctx->Warn(msg + " (warn-only)");
      }
    }
    ++ctx->report->compared;
  }
  for (const json::Value& b : base_list->array_items()) {
    const std::string name = b.GetString("name", "");
    if (FindByName(*cur_list, name) == nullptr) {
      const std::string msg = "check '" + name + "' disappeared";
      if (b.GetString("severity", "hard") == "hard") {
        ctx->Fail(msg);
      } else {
        ctx->Warn(msg);
      }
    }
  }
}

// Warns (never fails) when the two documents were recorded on visibly
// different machines/configurations: wall-clock timings and speedup
// ratios are not comparable across hosts, and SIMD-backend differences
// change the bit patterns of lane-model reductions.
void DiffHost(DiffContext* ctx, const json::Value& base,
              const json::Value& cur) {
  const json::Value* bh = base.Find("host");
  const json::Value* ch = cur.Find("host");
  if (bh == nullptr || ch == nullptr) {
    if (bh != ch) {
      ctx->Warn(
          "host context present in only one document (timing comparison "
          "unreliable; regenerate the baseline)");
    }
    return;
  }
  const auto render = [](const json::Value* v) -> std::string {
    if (v == nullptr) return "<absent>";
    if (v->is_bool()) return v->bool_value() ? "true" : "false";
    if (v->is_number()) return Num(v->NumberOr(0.0));
    if (v->is_string()) return v->string_value();
    return "<other>";
  };
  for (const char* key :
       {"logical_cores", "threads", "isa", "simd_backend", "simd_compiled",
        "double_lanes", "float_lanes"}) {
    const std::string bs = render(bh->Find(key));
    const std::string cs = render(ch->Find(key));
    if (bs != cs) {
      ctx->Warn(std::string("host mismatch: ") + key + " " + bs + " -> " +
                cs + " (timings/speedups not comparable across machines)");
    }
  }
}

}  // namespace

DiffReport DiffBenchDocuments(const json::Value& baseline,
                              const json::Value& current,
                              const DiffOptions& options) {
  DiffReport report;
  DiffContext ctx{&options, baseline.GetString("bench", "?") + ": ", &report};
  const Status base_valid = ValidateBenchDocument(baseline);
  if (!base_valid.ok()) {
    ctx.Fail("baseline invalid: " + base_valid.ToString());
    return report;
  }
  const Status cur_valid = ValidateBenchDocument(current);
  if (!cur_valid.ok()) {
    ctx.Fail("current invalid: " + cur_valid.ToString());
    return report;
  }
  DiffChecks(&ctx, baseline, current);
  DiffHost(&ctx, baseline, current);
  if (baseline.GetBool("quick", false) != current.GetBool("quick", false)) {
    ctx.Warn(
        "quick-mode mismatch between baseline and current: workloads "
        "differ by design, numeric comparison skipped");
    return report;
  }
  DiffScalars(&ctx, baseline, current);
  DiffSeriesSection(&ctx, baseline, current);
  DiffTables(&ctx, baseline, current);
  return report;
}

DiffReport DiffSuites(const json::Value& baseline, const json::Value& current,
                      const DiffOptions& options) {
  DiffReport report;
  DiffContext ctx{&options, "", &report};
  const Status base_valid = ValidateSuiteDocument(baseline);
  if (!base_valid.ok()) {
    ctx.Fail("baseline suite invalid: " + base_valid.ToString());
    return report;
  }
  const Status cur_valid = ValidateSuiteDocument(current);
  if (!cur_valid.ok()) {
    ctx.Fail("current suite invalid: " + cur_valid.ToString());
    return report;
  }
  const auto& base_benches = baseline.Find("benches")->array_items();
  const auto& cur_benches = current.Find("benches")->array_items();
  for (const json::Value& b : base_benches) {
    const std::string id = b.GetString("bench", "");
    const json::Value* c = nullptr;
    for (const json::Value& candidate : cur_benches) {
      if (candidate.GetString("bench", "") == id) c = &candidate;
    }
    if (c == nullptr) {
      report.failures.push_back("bench '" + id +
                                "' missing from current suite");
      continue;
    }
    const DiffReport one = DiffBenchDocuments(b, *c, options);
    report.failures.insert(report.failures.end(), one.failures.begin(),
                           one.failures.end());
    report.warnings.insert(report.warnings.end(), one.warnings.begin(),
                           one.warnings.end());
    report.compared += one.compared;
  }
  for (const json::Value& c : cur_benches) {
    const std::string id = c.GetString("bench", "");
    bool in_base = false;
    for (const json::Value& b : base_benches) {
      if (b.GetString("bench", "") == id) in_base = true;
    }
    if (!in_base) {
      report.warnings.push_back("bench '" + id +
                                "' not in baseline (regenerate it)");
    }
  }
  return report;
}

std::string DiffReport::ToString() const {
  std::string out;
  for (const std::string& f : failures) out += "FAIL  " + f + "\n";
  for (const std::string& w : warnings) out += "warn  " + w + "\n";
  out += "compared " + std::to_string(compared) + " values: " +
         std::to_string(failures.size()) + " regression(s), " +
         std::to_string(warnings.size()) + " warning(s)\n";
  return out;
}

}  // namespace bench
}  // namespace multiclust
