// E16 (tutorial slides 7, 35-36): novel-topic discovery with the
// conditional information bottleneck. Given the known topic system of a
// document collection, CIB maximises I(Y; C | D) and must recover the
// *other* planted topic system; plain (unconditioned) clustering of the
// same counts rediscovers the known system instead.
#include <cstdio>

#include "altspace/cib.h"
#include "data/discrete.h"
#include "harness.h"
#include "metrics/partition_similarity.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_cib",
                   "E16: conditional information bottleneck, novel topics");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  std::printf("E16: conditional information bottleneck — novel topics"
              " (slides 7, 35-36)\n\n");
  std::printf("%6s | %11s %11s | %12s %12s | %10s\n", "seed", "CIB:known",
              "CIB:novel", "plain:known", "plain:novel", "I(Y;C|D)");
  bench::Table* runs = h.AddTable(
      "per_seed_nmi",
      {"seed", "cib_known", "cib_novel", "plain_known", "plain_novel",
       "conditional_information"},
      bench::ValueOptions::Tolerance(1e-6));
  double cib_novel_sum = 0, plain_novel_sum = 0;
  bool cib_suppresses_known = true, plain_finds_known = true;
  const int kRuns = h.quick() ? 2 : 5;
  for (uint64_t seed = 1; seed <= static_cast<uint64_t>(kRuns); ++seed) {
    DocumentTermSpec spec;
    spec.num_documents = h.quick() ? 120 : 180;
    spec.seed = seed;
    auto ds = MakeDocumentTerm(spec);
    if (!ds.ok()) return 1;
    const auto known = ds->GroundTruth("topicsA").value();
    const auto novel = ds->GroundTruth("topicsB").value();

    CibOptions opts;
    opts.k = 2;
    opts.seed = seed;
    auto cib = RunCib(ds->data(), known, opts);
    if (!cib.ok()) return 1;

    // "Plain" baseline: the same optimiser with no conditioning clustering
    // (a single conditioning cell) and k matching the known system — the
    // unconditional information bottleneck.
    CibOptions plain_opts;
    plain_opts.k = 3;
    plain_opts.seed = seed;
    const std::vector<int> no_knowledge(ds->num_objects(), 0);
    auto plain = RunCib(ds->data(), no_knowledge, plain_opts);
    if (!plain.ok()) return 1;

    const double cib_known =
        NormalizedMutualInformation(cib->clustering.labels, known).value();
    const double cib_novel =
        NormalizedMutualInformation(cib->clustering.labels, novel).value();
    const double plain_known =
        NormalizedMutualInformation(plain->clustering.labels, known).value();
    const double plain_novel =
        NormalizedMutualInformation(plain->clustering.labels, novel).value();
    std::printf("%6llu | %11.3f %11.3f | %12.3f %12.3f | %10.4f\n",
                static_cast<unsigned long long>(seed), cib_known, cib_novel,
                plain_known, plain_novel, cib->conditional_information);
    runs->Row();
    runs->Cell(static_cast<double>(seed));
    runs->Cell(cib_known);
    runs->Cell(cib_novel);
    runs->Cell(plain_known);
    runs->Cell(plain_novel);
    runs->Cell(cib->conditional_information);
    cib_novel_sum += cib_novel;
    plain_novel_sum += plain_novel;
    cib_suppresses_known = cib_suppresses_known && cib_known < 0.1;
    plain_finds_known = plain_finds_known && plain_known > 0.9;
  }
  const double cib_novel_mean = cib_novel_sum / kRuns;
  const double plain_novel_mean = plain_novel_sum / kRuns;
  std::printf("\nmean NMI(novel system): CIB=%.3f vs unconditioned IB=%.3f\n",
              cib_novel_mean, plain_novel_mean);
  h.Scalar("cib_novel_mean_nmi", cib_novel_mean,
           bench::ValueOptions::Tolerance(1e-6));
  h.Scalar("plain_novel_mean_nmi", plain_novel_mean,
           bench::ValueOptions::Tolerance(1e-6));
  h.Check("cib_finds_novel_system",
          cib_novel_mean > 0.9 && cib_suppresses_known,
          "conditioning must flip the optimiser to the hidden system");
  h.Check("unconditioned_ib_finds_known_system",
          plain_novel_mean < 0.1 && plain_finds_known,
          "without conditioning the dominant known system must win");
  std::printf("expected shape: conditioning on the known topics flips the"
              " optimiser from the\ndominant known system to the hidden"
              " alternative system.\n");
  return h.Finish();
}
