// E2 (tutorial slides 31-33): COALA's w parameter trades clustering quality
// against dissimilarity from the given clustering. Large w -> prefer
// quality (alternative collapses towards the given structure's quality
// optimum); small w -> prefer dissimilarity.
#include <cstdio>

#include "altspace/coala.h"
#include "data/generators.h"
#include "metrics/clustering_quality.h"
#include "metrics/partition_similarity.h"

using namespace multiclust;

int main() {
  auto ds = MakeFourSquares(40, 10.0, 0.9, 7);
  const auto horizontal = ds->GroundTruth("horizontal").value();
  const auto vertical = ds->GroundTruth("vertical").value();

  std::printf("E2: COALA quality vs dissimilarity trade-off (slides 31-33)\n");
  std::printf("given clustering: the horizontal split\n\n");
  std::printf("%8s %10s %12s %12s %14s %12s\n", "w", "SSE", "ARI(given)",
              "ARI(vert)", "diss-merges", "qual-merges");
  for (double w : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 2.0, 5.0, 100.0}) {
    CoalaOptions opts;
    opts.k = 2;
    opts.w = w;
    CoalaStats stats;
    auto alt = RunCoala(ds->data(), horizontal, opts, &stats);
    if (!alt.ok()) continue;
    std::printf("%8.2f %10.1f %12.3f %12.3f %14zu %12zu\n", w,
                SumSquaredError(ds->data(), alt->labels).value(),
                AdjustedRandIndex(alt->labels, horizontal).value(),
                AdjustedRandIndex(alt->labels, vertical).value(),
                stats.dissimilarity_merges, stats.quality_merges);
  }
  std::printf("\nexpected shape: small w -> ARI(given) near 0 and ARI(vert)"
              " near 1 (dissimilarity\nwins); very large w -> constraint"
              " merges vanish and the result drifts back\ntowards the"
              " unconstrained (given-like) grouping.\n");
  return 0;
}
