// E2 (tutorial slides 31-33): COALA's w parameter trades clustering quality
// against dissimilarity from the given clustering. Large w -> prefer
// quality (alternative collapses towards the given structure's quality
// optimum); small w -> prefer dissimilarity.
#include <cstdio>

#include "altspace/coala.h"
#include "data/generators.h"
#include "harness.h"
#include "metrics/clustering_quality.h"
#include "metrics/partition_similarity.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_coala_tradeoff",
                   "E2: COALA quality vs dissimilarity trade-off");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  const size_t kPerSquare = h.quick() ? 25 : 40;
  auto ds = MakeFourSquares(kPerSquare, 10.0, 0.9, 7);
  const auto horizontal = ds->GroundTruth("horizontal").value();
  const auto vertical = ds->GroundTruth("vertical").value();

  std::printf("E2: COALA quality vs dissimilarity trade-off (slides 31-33)\n");
  std::printf("given clustering: the horizontal split\n\n");
  std::printf("%8s %10s %12s %12s %14s %12s\n", "w", "SSE", "ARI(given)",
              "ARI(vert)", "diss-merges", "qual-merges");
  bench::Series* ari_given_series = h.AddSeries(
      "ari_given", "w", "ARI(given)", bench::ValueOptions::Tolerance(1e-6));
  bench::Series* ari_vert_series = h.AddSeries(
      "ari_vertical", "w", "ARI(vertical)",
      bench::ValueOptions::Tolerance(1e-6));
  bench::Series* diss_merges_series =
      h.AddSeries("dissimilarity_merges", "w", "merges");
  double low_w_given = 1.0, low_w_vert = 0.0, high_w_given = 0.0;
  for (double w : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 2.0, 5.0, 100.0}) {
    CoalaOptions opts;
    opts.k = 2;
    opts.w = w;
    CoalaStats stats;
    auto alt = RunCoala(ds->data(), horizontal, opts, &stats);
    if (!alt.ok()) continue;
    const double ari_given =
        AdjustedRandIndex(alt->labels, horizontal).value();
    const double ari_vert = AdjustedRandIndex(alt->labels, vertical).value();
    std::printf("%8.2f %10.1f %12.3f %12.3f %14zu %12zu\n", w,
                SumSquaredError(ds->data(), alt->labels).value(), ari_given,
                ari_vert, stats.dissimilarity_merges, stats.quality_merges);
    ari_given_series->Add(w, ari_given);
    ari_vert_series->Add(w, ari_vert);
    diss_merges_series->Add(w, static_cast<double>(
                                   stats.dissimilarity_merges));
    if (w <= 0.05 + 1e-9) {
      low_w_given = ari_given;
      low_w_vert = ari_vert;
    }
    if (w >= 100.0 - 1e-9) high_w_given = ari_given;
  }
  h.Check("small_w_prefers_dissimilarity",
          low_w_given < 0.1 && low_w_vert > 0.9,
          "w=0.05 should find the vertical alternative, not the given split");
  h.Check("large_w_prefers_quality", high_w_given > 0.9,
          "w=100 should drift back to the given-like grouping");
  std::printf("\nexpected shape: small w -> ARI(given) near 0 and ARI(vert)"
              " near 1 (dissimilarity\nwins); very large w -> constraint"
              " merges vanish and the result drifts back\ntowards the"
              " unconstrained (given-like) grouping.\n");
  return h.Finish();
}
