// P1: thread-pool scaling of the hot kernels (see DESIGN.md "Threading
// model"). For each kernel, reports wall time and speedup at 1/2/4/8
// threads plus a bit-identity check against the 1-thread result — the
// determinism guarantee is half the point of the pool design.
//
// Expected shape on multicore hardware: near-linear scaling for the
// k-means assignment and matmul kernels (>= 2.5x at 4 threads), somewhat
// less for the affinity matrix (upper-triangle imbalance) and the
// brute-force neighbourhood scan (the parallel path gives up the symmetry
// halving). On a single-core host every speedup is ~1.0 and only the
// "identical" column is informative.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/trace.h"
#include "harness.h"
#include "linalg/matrix.h"
#include "stats/hsic.h"

using namespace multiclust;

namespace {

// Set from --quick before any kernel's function-local static workload is
// materialised; the statics bake the scale in on first use.
bool g_quick = false;
int g_reps = 3;

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m.at(i, j) = rng.Gaussian(0, 1);
  }
  return m;
}

double Checksum(const Matrix& m) {
  double s = 0.0;
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) s += m.at(i, j) * (1.0 + j % 7);
  }
  return s;
}

struct Kernel {
  const char* name;
  const char* id;  // harness metric prefix
  // Runs the kernel once and returns a checksum of its result.
  double (*run)();
};

// n = 20k points, d = 16, k = 8: dominated by the parallel assignment step.
double KMeansKernel() {
  static const Matrix data = RandomMatrix(g_quick ? 4000 : 20000, 16, 11);
  KMeansOptions opts;
  opts.k = 8;
  opts.restarts = 1;
  opts.max_iters = 12;
  opts.seed = 3;
  const Clustering c = RunKMeans(data, opts).value();
  double s = c.quality;
  for (size_t i = 0; i < c.labels.size(); ++i) s += c.labels[i] * 1e-6;
  return s;
}

// (20000 x 48) * (48 x 48): the parallel Matrix::operator* row loop.
double MatmulKernel() {
  static const Matrix a = RandomMatrix(g_quick ? 4000 : 20000, 48, 12);
  static const Matrix b = RandomMatrix(48, 48, 13);
  return Checksum(a * b);
}

// 3000 x 3000 Gaussian affinity matrix (spectral/HSIC substrate).
double AffinityKernel() {
  static const Matrix data = RandomMatrix(g_quick ? 900 : 3000, 8, 14);
  return Checksum(GaussianKernelMatrix(data, 0.5));
}

// Brute-force eps-neighbourhoods over 6000 points.
double NeighborhoodKernel() {
  static const Matrix data = RandomMatrix(g_quick ? 1500 : 6000, 8, 15);
  const auto neighbors = EpsNeighborhoods(data, 2.5, {});
  double s = 0.0;
  for (const auto& list : neighbors) s += static_cast<double>(list.size());
  return s;
}

double TimeIt(double (*fn)(), double* checksum) {
  using clock = std::chrono::steady_clock;
  *checksum = fn();  // warm-up run also produces the checksum
  const auto start = clock::now();
  for (int r = 0; r < g_reps; ++r) fn();
  const std::chrono::duration<double, std::milli> elapsed =
      clock::now() - start;
  return elapsed.count() / g_reps;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_parallel_scaling",
                   "P1: thread-pool scaling of the hot kernels");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();
  g_quick = h.quick();
  g_reps = h.quick() ? 1 : 3;

  const Kernel kernels[] = {
      {"kmeans-assign(n=20k,d=16,k=8)", "kmeans", KMeansKernel},
      {"matmul(20k x 48 * 48 x 48)", "matmul", MatmulKernel},
      {"affinity(n=3000)", "affinity", AffinityKernel},
      {"eps-neighbors(n=6000)", "neighbors", NeighborhoodKernel},
  };
  const size_t thread_counts[] = {1, 2, 4, 8};

  std::printf("P1: parallel scaling (host reports %zu hardware threads)\n\n",
              HardwareConcurrency());
  std::printf("%-32s %8s %10s %9s %10s\n", "kernel", "threads", "ms/iter",
              "speedup", "identical");
  bool all_identical = true;
  double min_4thread_speedup_fast_kernels = 1e9;
  for (const Kernel& kernel : kernels) {
    bench::Series* ms_series =
        h.AddSeries(std::string(kernel.id) + "_ms", "threads", "ms",
                    bench::ValueOptions::Timing());
    double base_ms = 0.0, base_sum = 0.0;
    for (const size_t threads : thread_counts) {
      SetThreadCount(threads);
      double sum = 0.0;
      const double ms = TimeIt(kernel.run, &sum);
      if (threads == 1) {
        base_ms = ms;
        base_sum = sum;
      }
      std::printf("%-32s %8zu %10.2f %8.2fx %10s\n", kernel.name, threads,
                  ms, base_ms / ms, sum == base_sum ? "yes" : "NO");
      ms_series->Add(static_cast<double>(threads), ms);
      all_identical = all_identical && sum == base_sum;
      if (threads == 4 && (kernel.run == KMeansKernel ||
                           kernel.run == MatmulKernel)) {
        min_4thread_speedup_fast_kernels =
            std::min(min_4thread_speedup_fast_kernels, base_ms / ms);
      }
    }
    std::printf("\n");
  }
  SetThreadCount(0);
  std::printf("expected shape: kmeans/matmul >= 2.5x at 4 threads on >= 4\n"
              "cores; all kernels bit-identical at every thread count.\n");
  h.Check("bit_identical_across_thread_counts", all_identical,
          "every kernel must produce bit-identical results at every thread "
          "count");
  h.WarnCheck("kmeans_matmul_scale_at_4_threads",
              HardwareConcurrency() < 4 ||
                  min_4thread_speedup_fast_kernels >= 2.0,
              "kmeans/matmul should scale near-linearly at 4 threads on a "
              ">= 4-core host (host-dependent)");

  // T1 companion: what the span tracer costs the most span-dense kernel
  // (k-means: four spans per outer iteration) when armed, relative to the
  // disarmed default. The spans sit outside the per-point inner loops, so
  // the delta should be well under the 2% observability budget.
  std::printf("\ntracer overhead (kmeans kernel, 4 threads):\n");
  if (!trace::kCompiledIn) {
    std::printf("  tracing compiled out (-DMULTICLUST_TRACING=OFF); "
                "nothing to measure.\n");
    return h.Finish();
  }
  SetThreadCount(4);
  double sum_off = 0.0, sum_on = 0.0;
  trace::Disable();
  const double ms_off = TimeIt(KMeansKernel, &sum_off);
  trace::Enable();
  trace::Reset();
  const double ms_on = TimeIt(KMeansKernel, &sum_on);
  trace::Disable();
  trace::Reset();
  SetThreadCount(0);
  const double delta_pct = 100.0 * (ms_on - ms_off) / ms_off;
  std::printf("  disarmed %8.2f ms/iter   armed %8.2f ms/iter   "
              "delta %+.2f%%   identical %s\n",
              ms_off, ms_on, delta_pct, sum_off == sum_on ? "yes" : "NO");
  bench::ValueOptions pct_opts;
  pct_opts.unit = "%";
  pct_opts.timing = true;  // derived from wall-clock: warn-only in diffs
  h.Scalar("tracer_overhead_pct", delta_pct, pct_opts);
  h.Check("tracer_preserves_results", sum_off == sum_on,
          "arming the tracer must not change the kernel's result");
  h.WarnCheck("tracer_overhead_within_budget", delta_pct < 5.0,
              "armed-tracer overhead should stay within the observability "
              "budget (host-dependent)");
  return h.Finish();
}
