// E13 (tutorial slides 108-110): random-projection cluster ensembles. The
// consensus clustering stabilises as the ensemble grows and beats the
// average individual member — the converse use of multiple clusterings.
#include <cstdio>

#include "data/generators.h"
#include "harness.h"
#include "metrics/partition_similarity.h"
#include "multiview/consensus.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_consensus",
                   "E13: random-projection ensemble consensus");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  // High-dimensional single-truth data: 3 clusters in 8 dims + 4 noise
  // dims; individual 3-D random projections see a distorted picture.
  std::vector<BlobSpec> blobs(3);
  for (int c = 0; c < 3; ++c) {
    blobs[c].center.assign(8, 0.0);
    blobs[c].center[c] = 6.0;
    blobs[c].center[c + 3] = -6.0;
    blobs[c].stddev = 1.0;
    blobs[c].count = 60;
  }
  auto base = MakeBlobs(blobs, 71);
  auto ds = WithNoiseDims(*base, 4, 72);
  const auto truth = ds->GroundTruth("labels").value();

  std::printf("E13: random-projection ensemble consensus (slides 108-110)\n");
  std::printf("data: 180 objects, 12 dims (4 pure noise), 3 planted"
              " clusters\n\n");
  std::printf("%10s %16s %16s %10s\n", "ensemble", "mean member ARI",
              "consensus ARI", "ANMI");
  bench::Series* consensus_series = h.AddSeries(
      "consensus_ari", "ensemble_size", "ARI",
      bench::ValueOptions::Tolerance(1e-6));
  bench::Series* member_series = h.AddSeries(
      "mean_member_ari", "ensemble_size", "ARI",
      bench::ValueOptions::Tolerance(1e-6));
  const std::vector<size_t> sizes = h.quick()
                                        ? std::vector<size_t>{1, 4, 8}
                                        : std::vector<size_t>{1, 2, 4, 8, 16,
                                                              32};
  double first_consensus = 0.0, last_consensus = 0.0, last_member = 0.0;
  for (size_t ensemble : sizes) {
    ConsensusOptions opts;
    opts.ensemble_size = ensemble;
    opts.projection_dims = 3;
    opts.k_member = 3;
    opts.k_final = 3;
    opts.seed = 73;
    auto r = RunEnsembleConsensus(ds->data(), opts);
    if (!r.ok()) continue;
    double member_ari = 0.0;
    for (const auto& m : r->member_labels) {
      member_ari += AdjustedRandIndex(m, truth).value();
    }
    member_ari /= static_cast<double>(r->member_labels.size());
    const double consensus_ari =
        AdjustedRandIndex(r->consensus.labels, truth).value();
    std::printf("%10zu %16.3f %16.3f %10.3f\n", ensemble, member_ari,
                consensus_ari, r->anmi);
    consensus_series->Add(static_cast<double>(ensemble), consensus_ari);
    member_series->Add(static_cast<double>(ensemble), member_ari);
    if (ensemble == sizes.front()) first_consensus = consensus_ari;
    last_consensus = consensus_ari;
    last_member = member_ari;
  }
  h.Check("consensus_improves_with_ensemble_size",
          last_consensus > first_consensus + 0.3,
          "consensus ARI must climb as the ensemble grows");
  h.Check("consensus_beats_members", last_consensus > last_member + 0.3,
          "the full-ensemble consensus must clearly beat the member mean");
  std::printf("\nexpected shape: individual projected members are mediocre"
              " and noisy; the\nconsensus ARI rises with ensemble size and"
              " settles above the member mean.\n");
  return h.Finish();
}
