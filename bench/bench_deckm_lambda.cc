// E3 (tutorial slides 40-42): Decorrelated k-means. The lambda penalty
// steers the two representative sets towards orthogonality; the bench
// sweeps lambda and reports compactness, inter-solution NMI, and recovery
// of the two planted splits, plus the objective-decrease property.
#include <cstdio>

#include "altspace/dec_kmeans.h"
#include "data/generators.h"
#include "harness.h"
#include "metrics/multi_solution.h"
#include "metrics/partition_similarity.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_deckm_lambda",
                   "E3: decorrelated k-means lambda sweep");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  const size_t kPerSquare = h.quick() ? 30 : 40;
  const uint32_t kRestarts = h.quick() ? 3 : 5;
  auto ds = MakeFourSquares(kPerSquare, 10.0, 0.8, 3);
  const auto horizontal = ds->GroundTruth("horizontal").value();
  const auto vertical = ds->GroundTruth("vertical").value();

  std::printf("E3: decorrelated k-means lambda sweep (slides 40-42)\n\n");
  std::printf("%8s %12s %12s %16s %10s\n", "lambda", "SSE(A)", "SSE(B)",
              "NMI(A,B)", "recovery");
  bench::Series* nmi_series = h.AddSeries(
      "nmi_ab", "lambda", "NMI(A,B)", bench::ValueOptions::Tolerance(1e-6));
  bench::Series* recovery_series =
      h.AddSeries("recovery", "lambda", "mean recovery",
                  bench::ValueOptions::Tolerance(1e-6));
  bool decorrelated_ok = true, duplicate_at_zero = false;
  for (double lambda : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
    DecKMeansOptions opts;
    opts.ks = {2, 2};
    opts.lambda = lambda;
    opts.restarts = kRestarts;
    opts.seed = 17;
    auto r = RunDecorrelatedKMeans(ds->data(), opts);
    if (!r.ok()) continue;
    const double nmi_ab =
        NormalizedMutualInformation(r->solutions.at(0).labels,
                                    r->solutions.at(1).labels)
            .value();
    auto match = MatchSolutionsToTruths({horizontal, vertical},
                                        r->solutions.Labels());
    std::printf("%8.1f %12.1f %12.1f %16.3f %10.3f\n", lambda,
                r->solutions.at(0).quality, r->solutions.at(1).quality,
                nmi_ab, match->mean_recovery);
    nmi_series->Add(lambda, nmi_ab);
    recovery_series->Add(lambda, match->mean_recovery);
    if (lambda == 0.0) {
      duplicate_at_zero = nmi_ab > 0.9;
    } else if (lambda >= 0.5) {
      decorrelated_ok =
          decorrelated_ok && nmi_ab < 0.1 && match->mean_recovery > 0.9;
    }
  }
  h.Check("lambda_zero_duplicates", duplicate_at_zero,
          "lambda=0 should degenerate to two copies (NMI(A,B) ~ 1)");
  h.Check("moderate_lambda_decorrelates", decorrelated_ok,
          "every lambda >= 0.5 should give NMI(A,B) ~ 0, recovery ~ 1");

  // Objective monotonicity of the alternating minimisation.
  DecKMeansOptions opts;
  opts.ks = {2, 2};
  opts.lambda = 4.0;
  opts.restarts = 1;
  opts.seed = 5;
  auto r = RunDecorrelatedKMeans(ds->data(), opts);
  std::printf("\nobjective trace (lambda=4): ");
  bool monotone = true;
  for (size_t i = 0; i < r->history.size(); ++i) {
    if (i < 8) std::printf("%.0f ", r->history[i]);
    if (i > 0 && r->history[i] > r->history[i - 1] + 1e-6) monotone = false;
  }
  h.Scalar("objective_trace_length",
           static_cast<double>(r->history.size()));
  h.Check("objective_non_increasing", monotone,
          "the alternating minimisation must never increase the objective");
  std::printf("\nexpected shape: lambda=0 -> duplicate solutions"
              " (NMI(A,B) ~ 1); moderate lambda ->\northogonal solutions"
              " (NMI(A,B) ~ 0) recovering both planted splits; the\n"
              "objective trace is non-increasing.\n");
  return h.Finish();
}
