// E3 (tutorial slides 40-42): Decorrelated k-means. The lambda penalty
// steers the two representative sets towards orthogonality; the bench
// sweeps lambda and reports compactness, inter-solution NMI, and recovery
// of the two planted splits, plus the objective-decrease property.
#include <cstdio>

#include "altspace/dec_kmeans.h"
#include "data/generators.h"
#include "metrics/multi_solution.h"
#include "metrics/partition_similarity.h"

using namespace multiclust;

int main() {
  auto ds = MakeFourSquares(40, 10.0, 0.8, 3);
  const auto horizontal = ds->GroundTruth("horizontal").value();
  const auto vertical = ds->GroundTruth("vertical").value();

  std::printf("E3: decorrelated k-means lambda sweep (slides 40-42)\n\n");
  std::printf("%8s %12s %12s %16s %10s\n", "lambda", "SSE(A)", "SSE(B)",
              "NMI(A,B)", "recovery");
  for (double lambda : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
    DecKMeansOptions opts;
    opts.ks = {2, 2};
    opts.lambda = lambda;
    opts.restarts = 5;
    opts.seed = 17;
    auto r = RunDecorrelatedKMeans(ds->data(), opts);
    if (!r.ok()) continue;
    const double nmi_ab =
        NormalizedMutualInformation(r->solutions.at(0).labels,
                                    r->solutions.at(1).labels)
            .value();
    auto match = MatchSolutionsToTruths({horizontal, vertical},
                                        r->solutions.Labels());
    std::printf("%8.1f %12.1f %12.1f %16.3f %10.3f\n", lambda,
                r->solutions.at(0).quality, r->solutions.at(1).quality,
                nmi_ab, match->mean_recovery);
  }

  // Objective monotonicity of the alternating minimisation.
  DecKMeansOptions opts;
  opts.ks = {2, 2};
  opts.lambda = 4.0;
  opts.restarts = 1;
  opts.seed = 5;
  auto r = RunDecorrelatedKMeans(ds->data(), opts);
  std::printf("\nobjective trace (lambda=4): ");
  for (size_t i = 0; i < r->history.size() && i < 8; ++i) {
    std::printf("%.0f ", r->history[i]);
  }
  std::printf("\nexpected shape: lambda=0 -> duplicate solutions"
              " (NMI(A,B) ~ 1); moderate lambda ->\northogonal solutions"
              " (NMI(A,B) ~ 0) recovering both planted splits; the\n"
              "objective trace is non-increasing.\n");
  return 0;
}
