// E10 (tutorial slides 88-90): ENCLUS ranks subspaces by grid entropy;
// subspaces carrying planted structure must rank above noise subspaces,
// and the interest measure (correlation gain) must separate them too.
#include <cstdio>
#include <set>
#include <string>

#include "data/generators.h"
#include "harness.h"
#include "stats/hsic.h"
#include "subspace/enclus.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_enclus",
                   "E10: ENCLUS subspace ranking by entropy + HSIC");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 10.0, 0.6, ""};
  views[1] = {2, 3, 10.0, 0.6, ""};
  auto ds = MakeMultiView(h.quick() ? 200 : 300, views, 2, 51);

  EnclusOptions opts;
  opts.xi = 6;
  opts.omega = 20.0;  // permissive, to obtain a full ranking
  opts.max_dims = 2;
  auto ranking = RunEnclus(ds->data(), opts);
  if (!ranking.ok()) return 1;

  std::printf("E10: ENCLUS subspace ranking by entropy (slides 88-89)\n");
  std::printf("planted views: dims {0,1} and {2,3}; dims {4,5} are"
              " uniform noise\n\n");
  std::printf("%6s %-14s %10s %10s\n", "rank", "subspace", "entropy",
              "interest");
  bench::Table* ranked = h.AddTable(
      "ranking", {"rank", "subspace", "entropy", "interest"},
      bench::ValueOptions::Tolerance(1e-6));
  std::vector<std::set<size_t>> top_two;
  size_t shown = 0;
  for (size_t i = 0; i < ranking->size(); ++i) {
    const auto& s = (*ranking)[i];
    if (s.dims.size() != 2) continue;
    std::string dims = "{";
    for (size_t j = 0; j < s.dims.size(); ++j) {
      if (j) dims += ",";
      dims += std::to_string(s.dims[j]);
    }
    dims += "}";
    std::printf("%6zu %-14s %10.3f %10.3f\n", i, dims.c_str(), s.entropy,
                s.interest);
    ranked->Row();
    ranked->Cell(static_cast<double>(i));
    ranked->TextCell(dims);
    ranked->Cell(s.entropy);
    ranked->Cell(s.interest);
    if (top_two.size() < 2) {
      top_two.emplace_back(s.dims.begin(), s.dims.end());
    }
    if (++shown >= 12) break;
  }
  const std::set<size_t> planted_a{0, 1}, planted_b{2, 3};
  const bool planted_first =
      top_two.size() == 2 &&
      ((top_two[0] == planted_a && top_two[1] == planted_b) ||
       (top_two[0] == planted_b && top_two[1] == planted_a));
  h.Check("planted_subspaces_rank_first", planted_first,
          "the two best-ranked 2-D subspaces must be {0,1} and {2,3}");

  // mSC-style check (slide 90): the HSIC dependence between the two
  // planted views is low, and within a view it is high — the signal that
  // steers multiple-spectral-clustering towards independent subspaces.
  const Matrix view0 = ds->data().SelectColumns({0, 1});
  const Matrix view1 = ds->data().SelectColumns({2, 3});
  const Matrix half0 = ds->data().SelectColumns({0});
  const Matrix half1 = ds->data().SelectColumns({1});
  const double hsic_across = Hsic(view0, view1).value();
  const double hsic_within = Hsic(half0, half1).value();
  std::printf("\nHSIC dependence (slide 90, mSC):\n");
  std::printf("  between planted views {0,1} vs {2,3}:   %.5f\n",
              hsic_across);
  std::printf("  within a view, dim {0} vs dim {1}:      %.5f\n",
              hsic_within);
  h.Scalar("hsic_across_views", hsic_across,
           bench::ValueOptions::Tolerance(1e-6));
  h.Scalar("hsic_within_view", hsic_within,
           bench::ValueOptions::Tolerance(1e-6));
  h.Check("hsic_separates_views", hsic_within > 10.0 * hsic_across,
          "within-view dependence must far exceed across-view dependence");
  std::printf("\nexpected shape: planted 2-D subspaces rank first with high"
              " interest; noise\npairs rank last; HSIC within a view far"
              " exceeds HSIC across views.\n");
  return h.Finish();
}
