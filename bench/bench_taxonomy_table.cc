// T1 (tutorial slide 116): the taxonomy comparison table, generated from
// the AlgorithmTraits registry so code and documentation cannot drift.
#include <cstdio>
#include <set>

#include "core/taxonomy.h"
#include "harness.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_taxonomy_table",
                   "T1: taxonomy of multiple-clustering approaches");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  std::printf("T1: taxonomy of multiple-clustering approaches "
              "(tutorial slide 116)\n\n%s",
              RenderTaxonomyTable().c_str());

  const auto& registry = AlgorithmRegistry();
  std::set<SearchSpace> paradigms;
  std::set<std::string> names;
  for (const AlgorithmTraits& traits : registry) {
    paradigms.insert(traits.search_space);
    names.insert(traits.name);
  }
  bench::Table* table = h.AddTable(
      "registry", {"name", "search_space", "processing", "solutions"});
  for (const AlgorithmTraits& traits : registry) {
    table->Row();
    table->TextCell(traits.name);
    table->TextCell(ToString(traits.search_space));
    table->TextCell(ToString(traits.processing));
    table->TextCell(ToString(traits.solutions));
  }
  h.Scalar("algorithms", static_cast<double>(registry.size()));
  h.Scalar("paradigms", static_cast<double>(paradigms.size()));
  h.Check("all_four_paradigms_present", paradigms.size() == 4,
          "the registry must span all four search-space paradigms");
  h.Check("names_unique", names.size() == registry.size(),
          "duplicate algorithm names would corrupt the table");
  return h.Finish();
}
