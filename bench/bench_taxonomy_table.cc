// T1 (tutorial slide 116): the taxonomy comparison table, generated from
// the AlgorithmTraits registry so code and documentation cannot drift.
#include <cstdio>

#include "core/taxonomy.h"

int main() {
  std::printf("T1: taxonomy of multiple-clustering approaches "
              "(tutorial slide 116)\n\n%s",
              multiclust::RenderTaxonomyTable().c_str());
  return 0;
}
