// Kernel-layer contract tests: every fast kernel must be bit-identical to
// its kernels::ref counterpart (the stand-in for a -DMULTICLUST_SIMD=OFF
// build) over odd lengths, unaligned offsets and extreme/denormal inputs,
// and numerically faithful to a naive reference within reduction-order
// tolerance. Also pins tie-breaking and the GemmRows blocking invariance.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/kernels.h"

namespace multiclust {
namespace {

namespace k = multiclust::kernels;

// Deterministic pseudo-random fill in [-1, 1].
std::vector<double> RandVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Uniform(-1.0, 1.0);
  return v;
}

std::vector<float> RandVecF(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return v;
}

// Lengths that exercise every tail residue and a few vectorized bodies.
const size_t kLens[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 13, 16, 17,
                        31, 32, 33, 63, 64, 65, 70, 127, 128, 129};

TEST(SimdKernelTest, ReductionsBitIdenticalToRef) {
  for (size_t n : kLens) {
    const auto a = RandVec(n, 7 + n);
    const auto b = RandVec(n, 91 + n);
    EXPECT_EQ(k::Dot(a.data(), b.data(), n), k::ref::Dot(a.data(), b.data(), n))
        << "n=" << n;
    EXPECT_EQ(k::Sum(a.data(), n), k::ref::Sum(a.data(), n)) << "n=" << n;
    EXPECT_EQ(k::SquaredNorm(a.data(), n), k::ref::SquaredNorm(a.data(), n))
        << "n=" << n;
    EXPECT_EQ(k::SquaredDistance(a.data(), b.data(), n),
              k::ref::SquaredDistance(a.data(), b.data(), n))
        << "n=" << n;
  }
}

TEST(SimdKernelTest, QuadDiagBitIdenticalAndTailSafe) {
  for (size_t n : kLens) {
    const auto x = RandVec(n, 3 + n);
    const auto mean = RandVec(n, 5 + n);
    auto var = RandVec(n, 11 + n);
    for (auto& v : var) v = 0.5 + std::abs(v);  // positive variances
    const double fast = k::QuadDiag(x.data(), mean.data(), var.data(), n);
    const double ref = k::ref::QuadDiag(x.data(), mean.data(), var.data(), n);
    EXPECT_EQ(fast, ref) << "n=" << n;
    EXPECT_FALSE(std::isnan(fast)) << "n=" << n;  // tail must not produce 0/0
  }
}

TEST(SimdKernelTest, ElementwiseBitIdenticalToRefAndScalarLoop) {
  for (size_t n : kLens) {
    const auto x = RandVec(n, 17 + n);
    const auto m = RandVec(n, 19 + n);
    const auto y0 = RandVec(n, 23 + n);
    const double alpha = 0.37;

    // Plain scalar loops — elementwise kernels promise bit-identity to
    // these as well (they carry the seed semantics of Covariance etc.).
    std::vector<double> want_axpy = y0, want_diff = y0, want_sq = y0,
                        want_add = y0;
    for (size_t i = 0; i < n; ++i) {
      want_axpy[i] = want_axpy[i] + (alpha * x[i]);
      want_diff[i] = want_diff[i] + (alpha * (x[i] - m[i]));
      const double d = x[i] - m[i];
      want_sq[i] = want_sq[i] + (alpha * (d * d));
      want_add[i] = want_add[i] + x[i];
    }

    for (bool use_ref : {false, true}) {
      std::vector<double> axpy = y0, diff = y0, sq = y0, add = y0;
      if (use_ref) {
        k::ref::Axpy(alpha, x.data(), axpy.data(), n);
        k::ref::AxpyDiff(alpha, x.data(), m.data(), diff.data(), n);
        k::ref::AxpySqDiff(alpha, x.data(), m.data(), sq.data(), n);
        k::ref::Add(add.data(), x.data(), n);
      } else {
        k::Axpy(alpha, x.data(), axpy.data(), n);
        k::AxpyDiff(alpha, x.data(), m.data(), diff.data(), n);
        k::AxpySqDiff(alpha, x.data(), m.data(), sq.data(), n);
        k::Add(add.data(), x.data(), n);
      }
      EXPECT_EQ(axpy, want_axpy) << "n=" << n << " ref=" << use_ref;
      EXPECT_EQ(diff, want_diff) << "n=" << n << " ref=" << use_ref;
      EXPECT_EQ(sq, want_sq) << "n=" << n << " ref=" << use_ref;
      EXPECT_EQ(add, want_add) << "n=" << n << " ref=" << use_ref;
    }
  }
}

TEST(SimdKernelTest, CenterRowMatchesScalarExpression) {
  for (size_t n : kLens) {
    const auto row = RandVec(n, 29 + n);
    const auto rm = RandVec(n, 31 + n);
    const double rm_i = 0.123, total = -0.456;
    std::vector<double> fast(n), ref(n), want(n);
    for (size_t j = 0; j < n; ++j) want[j] = ((row[j] - rm_i) - rm[j]) + total;
    k::CenterRow(row.data(), rm_i, rm.data(), total, fast.data(), n);
    k::ref::CenterRow(row.data(), rm_i, rm.data(), total, ref.data(), n);
    EXPECT_EQ(fast, want) << "n=" << n;
    EXPECT_EQ(ref, want) << "n=" << n;
  }
}

TEST(SimdKernelTest, UnalignedOffsetsBitIdentical) {
  // Walk every possible misalignment of a 64-bit load within a 32-byte
  // vector register by offsetting into a shared buffer.
  const size_t n = 37;
  const auto base = RandVec(n + 16, 41);
  for (size_t off_a = 0; off_a < 5; ++off_a) {
    for (size_t off_b = 0; off_b < 5; ++off_b) {
      const double* a = base.data() + off_a;
      const double* b = base.data() + 5 + off_b;
      EXPECT_EQ(k::Dot(a, b, n), k::ref::Dot(a, b, n))
          << off_a << "," << off_b;
      EXPECT_EQ(k::SquaredDistance(a, b, n), k::ref::SquaredDistance(a, b, n))
          << off_a << "," << off_b;
    }
  }
}

TEST(SimdKernelTest, DenormalAndExtremeInputs) {
  // Denormals, near-overflow magnitudes, exact zeros and sign flips must
  // flow through both instantiations identically (no FTZ/DAZ surprises —
  // we never enable flush-to-zero).
  const std::vector<double> specials = {
      0.0,      -0.0,     5e-324,   -5e-324,  1e-308,  -1e-308,
      1e154,    -1e154,   1e-200,   4.9e-324, 2.2e-308, 1.0,
      -1.0,     0.5,      -0.5,     3.0,      7e150,   -7e150,
      1e-310};
  const size_t n = specials.size();
  std::vector<double> rev(specials.rbegin(), specials.rend());
  EXPECT_EQ(k::Dot(specials.data(), rev.data(), n),
            k::ref::Dot(specials.data(), rev.data(), n));
  EXPECT_EQ(k::Sum(specials.data(), n), k::ref::Sum(specials.data(), n));
  EXPECT_EQ(k::SquaredDistance(specials.data(), rev.data(), n),
            k::ref::SquaredDistance(specials.data(), rev.data(), n));
  EXPECT_EQ(k::SquaredNorm(specials.data(), n),
            k::ref::SquaredNorm(specials.data(), n));
}

TEST(SimdKernelTest, ReductionCloseToNaiveReference) {
  // Fast == ref bitwise, but both use the 4-lane order; sanity-check the
  // value against a naive left-to-right sum within reduction-order slack.
  const size_t n = 1001;
  const auto a = RandVec(n, 51);
  const auto b = RandVec(n, 53);
  double naive = 0.0;
  for (size_t i = 0; i < n; ++i) naive += a[i] * b[i];
  EXPECT_NEAR(k::Dot(a.data(), b.data(), n), naive, 1e-12 * n);
  double naive_sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    naive_sq += d * d;
  }
  EXPECT_NEAR(k::SquaredDistance(a.data(), b.data(), n), naive_sq, 1e-12 * n);
}

TEST(SimdKernelTest, GaussianRowMatchesRefBitwise) {
  const size_t d = 13, count = 9;
  const auto x = RandVec(d, 61);
  const auto rows = RandVec(count * d, 67);
  std::vector<double> fast(count), ref(count);
  k::GaussianRow(x.data(), rows.data(), count, d, 0.73, fast.data());
  k::ref::GaussianRow(x.data(), rows.data(), count, d, 0.73, ref.data());
  EXPECT_EQ(fast, ref);
  for (size_t j = 0; j < count; ++j) {
    EXPECT_NEAR(fast[j],
                std::exp(-0.73 * k::ref::SquaredDistance(
                                     x.data(), rows.data() + j * d, d)),
                0.0);
  }
}

TEST(SimdKernelTest, NearestKernelsAgreeWithRefAndBreakTiesLow) {
  const size_t d = 7, kcount = 5;
  const auto x = RandVec(d, 71);
  auto centers = RandVec(kcount * d, 73);
  // Duplicate center 1 into center 3: argmin must pick index 1.
  std::copy(centers.begin() + 1 * d, centers.begin() + 2 * d,
            centers.begin() + 3 * d);
  const int fast = k::NearestSquared(x.data(), centers.data(), kcount, d);
  const int ref = k::ref::NearestSquared(x.data(), centers.data(), kcount, d);
  EXPECT_EQ(fast, ref);

  std::vector<double> norms(kcount);
  for (size_t c = 0; c < kcount; ++c) {
    norms[c] = k::SquaredNorm(centers.data() + c * d, d);
  }
  const double xn = k::SquaredNorm(x.data(), d);
  EXPECT_EQ(
      k::NearestNormForm(x.data(), centers.data(), kcount, d, xn, norms.data()),
      k::ref::NearestNormForm(x.data(), centers.data(), kcount, d, xn,
                              norms.data()));

  // Exact-tie construction: all-identical centers -> index 0 wins.
  std::vector<double> same(kcount * d);
  for (size_t c = 0; c < kcount; ++c) {
    std::copy(x.begin(), x.end(), same.begin() + c * d);
  }
  EXPECT_EQ(k::NearestSquared(x.data(), same.data(), kcount, d), 0);
  EXPECT_EQ(k::ref::NearestSquared(x.data(), same.data(), kcount, d), 0);
}

TEST(SimdKernelTest, GemmRowsMatchesRefAndNaive) {
  // Odd shapes straddle the j-block (512) and k-block (64) boundaries.
  struct Shape {
    size_t m, k, n;
  };
  const Shape shapes[] = {{1, 1, 1},   {3, 5, 7},    {8, 64, 512},
                          {5, 65, 513}, {2, 130, 9},  {7, 3, 1030}};
  for (const auto& s : shapes) {
    const auto a = RandVec(s.m * s.k, 81 + s.m);
    const auto b = RandVec(s.k * s.n, 83 + s.n);
    std::vector<double> fast(s.m * s.n, 0.0), ref(s.m * s.n, 0.0);
    k::GemmRows(a.data(), s.k, b.data(), s.n, fast.data(), 0, s.m);
    k::ref::GemmRows(a.data(), s.k, b.data(), s.n, ref.data(), 0, s.m);
    EXPECT_EQ(fast, ref) << s.m << "x" << s.k << "x" << s.n;
    for (size_t i = 0; i < s.m; ++i) {
      for (size_t j = 0; j < s.n; ++j) {
        double want = 0.0;
        for (size_t kk = 0; kk < s.k; ++kk) {
          want += a[i * s.k + kk] * b[kk * s.n + j];
        }
        EXPECT_NEAR(fast[i * s.n + j], want, 1e-10 * (1.0 + std::abs(want)))
            << s.m << "x" << s.k << "x" << s.n << " @" << i << "," << j;
      }
    }
  }
}

TEST(SimdKernelTest, GemmRowsRowRangeOnlyTouchesRequestedRows) {
  const size_t m = 6, kk = 10, n = 21;
  const auto a = RandVec(m * kk, 97);
  const auto b = RandVec(kk * n, 101);
  std::vector<double> full(m * n, 0.0), part(m * n, 0.0);
  k::GemmRows(a.data(), kk, b.data(), n, full.data(), 0, m);
  k::GemmRows(a.data(), kk, b.data(), n, part.data(), 2, 5);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const double want = (i >= 2 && i < 5) ? full[i * n + j] : 0.0;
      EXPECT_EQ(part[i * n + j], want) << i << "," << j;
    }
  }
}

TEST(SimdKernelTest, Float32KernelsBitIdenticalToRef) {
  for (size_t n : kLens) {
    const auto a = RandVecF(n, 103 + n);
    const auto b = RandVecF(n, 107 + n);
    EXPECT_EQ(k::DotF(a.data(), b.data(), n),
              k::ref::DotF(a.data(), b.data(), n))
        << "n=" << n;
    EXPECT_EQ(k::SquaredNormF(a.data(), n), k::ref::SquaredNormF(a.data(), n))
        << "n=" << n;
    EXPECT_EQ(k::SquaredDistanceF(a.data(), b.data(), n),
              k::ref::SquaredDistanceF(a.data(), b.data(), n))
        << "n=" << n;
  }
  const size_t d = 11, kcount = 4;
  const auto x = RandVecF(d, 109);
  const auto centers = RandVecF(kcount * d, 113);
  EXPECT_EQ(k::NearestSquaredF(x.data(), centers.data(), kcount, d),
            k::ref::NearestSquaredF(x.data(), centers.data(), kcount, d));
}

TEST(SimdKernelTest, InfoReportsLaneModelAndBackend) {
  const k::SimdInfo info = k::Info();
  EXPECT_EQ(info.double_lanes, 4);
  EXPECT_EQ(info.float_lanes, 8);
  EXPECT_TRUE(info.backend == "avx2" || info.backend == "neon" ||
              info.backend == "scalar")
      << info.backend;
#if defined(MULTICLUST_SIMD)
  EXPECT_TRUE(info.compiled_simd);
#else
  EXPECT_FALSE(info.compiled_simd);
  EXPECT_EQ(info.backend, "scalar");
#endif
  EXPECT_FALSE(k::RuntimeIsa().empty());
}

}  // namespace
}  // namespace multiclust
