#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "metrics/clustering_quality.h"
#include "metrics/multi_solution.h"
#include "metrics/partition_similarity.h"

namespace multiclust {
namespace {

const std::vector<int> kA = {0, 0, 0, 1, 1, 1};
const std::vector<int> kSame = {2, 2, 2, 5, 5, 5};      // kA relabeled
const std::vector<int> kCrossed = {0, 1, 0, 1, 0, 1};   // independent-ish

TEST(RandIndexTest, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(RandIndex(kA, kA).value(), 1.0);
  EXPECT_DOUBLE_EQ(RandIndex(kA, kSame).value(), 1.0);
}

TEST(RandIndexTest, KnownValue) {
  // a = {0,0,1,1}, b = {0,1,1,1}: pairs: (01):same-a diff-b, (23),(13),(12):
  // b same; agreements: (23) same-same, (02),(03) diff-diff => R = 3/6.
  EXPECT_NEAR(RandIndex({0, 0, 1, 1}, {0, 1, 1, 1}).value(), 0.5, 1e-12);
}

TEST(AdjustedRandTest, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(kA, kSame).value(), 1.0);
}

TEST(AdjustedRandTest, CrossedNearZero) {
  EXPECT_NEAR(AdjustedRandIndex(kA, kCrossed).value(), 0.0, 0.2);
}

TEST(AdjustedRandTest, LargeRandomIndependentNearZero) {
  Rng rng(1);
  std::vector<int> a(600), b(600);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<int>(rng.NextIndex(3));
    b[i] = static_cast<int>(rng.NextIndex(4));
  }
  EXPECT_NEAR(AdjustedRandIndex(a, b).value(), 0.0, 0.05);
}

TEST(JaccardTest, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(JaccardIndex(kA, kSame).value(), 1.0);
}

TEST(JaccardTest, BoundedByRand) {
  // Jaccard ignores the same_neither pairs, so it's <= Rand here.
  EXPECT_LE(JaccardIndex(kA, kCrossed).value(),
            RandIndex(kA, kCrossed).value());
}

TEST(FowlkesMallowsTest, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(FowlkesMallows(kA, kSame).value(), 1.0);
}

TEST(PairF1Test, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(PairF1(kA, kSame).value(), 1.0);
}

TEST(NmiTest, IdenticalIsOne) {
  for (NmiNorm norm : {NmiNorm::kMax, NmiNorm::kMin, NmiNorm::kSqrt,
                       NmiNorm::kSum}) {
    EXPECT_NEAR(NormalizedMutualInformation(kA, kSame, norm).value(), 1.0,
                1e-12);
  }
}

TEST(NmiTest, IndependentIsZero) {
  const std::vector<int> a = {0, 0, 1, 1};
  const std::vector<int> b = {0, 1, 0, 1};
  EXPECT_NEAR(NormalizedMutualInformation(a, b).value(), 0.0, 1e-12);
}

TEST(NmiTest, TrivialPartitionConvention) {
  const std::vector<int> one_cluster = {0, 0, 0, 0};
  // One trivial, one informative: NMI 0.
  EXPECT_DOUBLE_EQ(
      NormalizedMutualInformation(one_cluster, {0, 1, 0, 1}).value(), 0.0);
  // Both trivial: identical by convention.
  EXPECT_DOUBLE_EQ(
      NormalizedMutualInformation(one_cluster, one_cluster).value(), 1.0);
}

TEST(ViTest, ZeroForIdentical) {
  EXPECT_NEAR(VariationOfInformation(kA, kSame).value(), 0.0, 1e-12);
}

TEST(ViTest, SymmetricAndPositive) {
  const double ab = VariationOfInformation(kA, kCrossed).value();
  const double ba = VariationOfInformation(kCrossed, kA).value();
  EXPECT_NEAR(ab, ba, 1e-12);
  EXPECT_GT(ab, 0.0);
}

TEST(ViTest, TriangleInequality) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2};
  const std::vector<int> b = {0, 1, 1, 2, 2, 0};
  const std::vector<int> c = {1, 1, 0, 0, 2, 2};
  const double ab = VariationOfInformation(a, b).value();
  const double bc = VariationOfInformation(b, c).value();
  const double ac = VariationOfInformation(a, c).value();
  EXPECT_LE(ac, ab + bc + 1e-12);
}

TEST(DissimilarityTest, ZeroForIdenticalOneForIndependent) {
  EXPECT_NEAR(ClusteringDissimilarity(kA, kSame).value(), 0.0, 1e-12);
  EXPECT_NEAR(
      ClusteringDissimilarity({0, 0, 1, 1}, {0, 1, 0, 1}).value(), 1.0,
      1e-12);
}

class LabelPermutationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LabelPermutationTest, MeasuresInvariantUnderRelabeling) {
  Rng rng(GetParam());
  const size_t n = 60;
  std::vector<int> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int>(rng.NextIndex(4));
    b[i] = static_cast<int>(rng.NextIndex(3));
  }
  // Permute the label names of a.
  const std::vector<int> rename = {3, 0, 2, 1};
  std::vector<int> a_renamed(n);
  for (size_t i = 0; i < n; ++i) a_renamed[i] = rename[a[i]];

  EXPECT_NEAR(RandIndex(a, b).value(), RandIndex(a_renamed, b).value(),
              1e-12);
  EXPECT_NEAR(AdjustedRandIndex(a, b).value(),
              AdjustedRandIndex(a_renamed, b).value(), 1e-12);
  EXPECT_NEAR(NormalizedMutualInformation(a, b).value(),
              NormalizedMutualInformation(a_renamed, b).value(), 1e-12);
  EXPECT_NEAR(VariationOfInformation(a, b).value(),
              VariationOfInformation(a_renamed, b).value(), 1e-12);
  EXPECT_NEAR(BestMatchAccuracy(a, b).value(),
              BestMatchAccuracy(a_renamed, b).value(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelPermutationTest,
                         ::testing::Values(11, 22, 33, 44, 55));

class MeasureRangeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MeasureRangeTest, AllMeasuresInRange) {
  Rng rng(GetParam());
  const size_t n = 40;
  std::vector<int> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int>(rng.NextIndex(5));
    b[i] = static_cast<int>(rng.NextIndex(2));
  }
  const double rand = RandIndex(a, b).value();
  EXPECT_GE(rand, 0.0);
  EXPECT_LE(rand, 1.0);
  const double jac = JaccardIndex(a, b).value();
  EXPECT_GE(jac, 0.0);
  EXPECT_LE(jac, 1.0);
  const double nmi = NormalizedMutualInformation(a, b).value();
  EXPECT_GE(nmi, 0.0);
  EXPECT_LE(nmi, 1.0);
  const double ari = AdjustedRandIndex(a, b).value();
  EXPECT_GE(ari, -1.0);
  EXPECT_LE(ari, 1.0);
  const double acc = BestMatchAccuracy(a, b).value();
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
  const double f1 = PairF1(a, b).value();
  EXPECT_GE(f1, 0.0);
  EXPECT_LE(f1, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeasureRangeTest,
                         ::testing::Values(7, 14, 21, 28, 35, 42));

TEST(HungarianTest, SolvesKnownAssignment) {
  const std::vector<std::vector<double>> cost = {
      {4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  const std::vector<int> assign = HungarianAssign(cost);
  // Optimal: row0->col1 (1), row1->col0 (2), row2->col2 (2): total 5.
  EXPECT_EQ(assign[0], 1);
  EXPECT_EQ(assign[1], 0);
  EXPECT_EQ(assign[2], 2);
}

TEST(HungarianTest, RectangularPadded) {
  const std::vector<std::vector<double>> cost = {{5, 1}, {1, 5}, {2, 2}};
  const std::vector<int> assign = HungarianAssign(cost);
  // Only two columns; one row stays unassigned (-1).
  int unassigned = 0;
  for (int a : assign) unassigned += (a < 0);
  EXPECT_EQ(unassigned, 1);
  EXPECT_EQ(assign[0], 1);
  EXPECT_EQ(assign[1], 0);
}

TEST(BestMatchAccuracyTest, PerfectAndPermuted) {
  EXPECT_DOUBLE_EQ(BestMatchAccuracy(kA, kA).value(), 1.0);
  EXPECT_DOUBLE_EQ(BestMatchAccuracy(kA, kSame).value(), 1.0);
}

TEST(BestMatchAccuracyTest, KnownFraction) {
  // Truth {0,0,0,1,1,1}, predicted flips one object.
  EXPECT_NEAR(BestMatchAccuracy(kA, {0, 0, 1, 1, 1, 1}).value(), 5.0 / 6.0,
              1e-12);
}

TEST(SseTest, ZeroForCoincidentPoints) {
  const Matrix data = Matrix::FromRows({{1, 1}, {1, 1}, {5, 5}});
  EXPECT_NEAR(SumSquaredError(data, {0, 0, 1}).value(), 0.0, 1e-12);
}

TEST(SseTest, KnownValue) {
  const Matrix data = Matrix::FromRows({{0.0}, {2.0}});
  // Mean 1, SSE = 1 + 1 = 2.
  EXPECT_NEAR(SumSquaredError(data, {0, 0}).value(), 2.0, 1e-12);
}

TEST(SseTest, NoiseExcluded) {
  const Matrix data = Matrix::FromRows({{0.0}, {2.0}, {100.0}});
  EXPECT_NEAR(SumSquaredError(data, {0, 0, -1}).value(), 2.0, 1e-12);
}

TEST(SilhouetteTest, WellSeparatedNearOne) {
  const Matrix data = Matrix::FromRows(
      {{0, 0}, {0.1, 0}, {0, 0.1}, {10, 10}, {10.1, 10}, {10, 10.1}});
  const std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  EXPECT_GT(Silhouette(data, labels).value(), 0.9);
}

TEST(SilhouetteTest, BadPartitionLower) {
  const Matrix data = Matrix::FromRows(
      {{0, 0}, {0.1, 0}, {0, 0.1}, {10, 10}, {10.1, 10}, {10, 10.1}});
  const std::vector<int> good = {0, 0, 0, 1, 1, 1};
  const std::vector<int> bad = {0, 1, 0, 1, 0, 1};
  EXPECT_GT(Silhouette(data, good).value(), Silhouette(data, bad).value());
}

TEST(SilhouetteTest, RequiresTwoClusters) {
  const Matrix data = Matrix::FromRows({{0.0}, {1.0}});
  EXPECT_FALSE(Silhouette(data, {0, 0}).ok());
}

TEST(DunnTest, SeparationRaisesDunn) {
  const Matrix tight = Matrix::FromRows({{0, 0}, {1, 0}, {10, 0}, {11, 0}});
  const Matrix loose = Matrix::FromRows({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  const std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_GT(DunnIndex(tight, labels).value(),
            DunnIndex(loose, labels).value());
}

TEST(ClusterMeansTest, ComputesMeans) {
  const Matrix data = Matrix::FromRows({{0, 0}, {2, 2}, {10, 10}});
  auto means = ClusterMeans(data, {0, 0, 1});
  ASSERT_TRUE(means.ok());
  EXPECT_DOUBLE_EQ(means->at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(means->at(1, 1), 10.0);
}

TEST(NoiseFractionTest, Basic) {
  EXPECT_DOUBLE_EQ(NoiseFraction({0, -1, 1, -1}), 0.5);
  EXPECT_DOUBLE_EQ(NoiseFraction({}), 0.0);
  EXPECT_EQ(NumClusters({0, -1, 1, 5}), 3u);
}

TEST(MultiSolutionTest, MeanAndMinPairwise) {
  const std::vector<std::vector<int>> sols = {
      {0, 0, 1, 1}, {2, 2, 3, 3}, {0, 1, 0, 1}};
  // Pairs: (0,1) identical -> 0; (0,2) independent -> 1; (1,2) -> 1.
  EXPECT_NEAR(MeanPairwiseDissimilarity(sols).value(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(MinPairwiseDissimilarity(sols).value(), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(MeanPairwiseDissimilarity({{0, 1}}).value(), 0.0);
}

TEST(MultiSolutionTest, MatchSolutionsToTruths) {
  const std::vector<std::vector<int>> truths = {{0, 0, 1, 1}, {0, 1, 0, 1}};
  const std::vector<std::vector<int>> found = {{1, 0, 1, 0}, {1, 1, 0, 0}};
  auto match = MatchSolutionsToTruths(truths, found);
  ASSERT_TRUE(match.ok());
  // Truth 0 == found 1 (relabeled), truth 1 == found 0 (relabeled).
  EXPECT_EQ(match->assignment[0], 1);
  EXPECT_EQ(match->assignment[1], 0);
  EXPECT_NEAR(match->mean_recovery, 1.0, 1e-9);
}

TEST(MultiSolutionTest, FewerSolutionsThanTruths) {
  const std::vector<std::vector<int>> truths = {{0, 0, 1, 1}, {0, 1, 0, 1}};
  const std::vector<std::vector<int>> found = {{0, 0, 1, 1}};
  auto match = MatchSolutionsToTruths(truths, found);
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->assignment[0], 0);
  EXPECT_EQ(match->assignment[1], -1);
  EXPECT_NEAR(match->mean_recovery, 0.5, 1e-9);
}

TEST(MultiSolutionTest, CombinedObjectiveRewardsDiversity) {
  const std::vector<std::vector<int>> diverse = {{0, 0, 1, 1}, {0, 1, 0, 1}};
  const std::vector<std::vector<int>> redundant = {{0, 0, 1, 1},
                                                   {0, 0, 1, 1}};
  const std::vector<double> q = {1.0, 1.0};
  EXPECT_GT(CombinedObjective(diverse, q, 1.0).value(),
            CombinedObjective(redundant, q, 1.0).value());
}

}  // namespace
}  // namespace multiclust
