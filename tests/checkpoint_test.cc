// Checkpoint/resume suite: artifact fundamentals (CRC, atomic write,
// rotation), the corruption matrix (truncated file, flipped byte, wrong
// schema version, missing field — all fall back to a cold start with an
// attributed warning), and the crash/resume oracle: for every iterative
// algorithm, killing the run at EVERY persistence point and resuming must
// reproduce the uninterrupted run's labels and objectives bit-identically.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "altspace/coala.h"
#include "altspace/dec_kmeans.h"
#include "cluster/gmm.h"
#include "cluster/kmeans.h"
#include "cluster/spectral.h"
#include "common/checkpoint.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/runguard.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "multiview/co_em.h"
#include "subspace/orclus.h"
#include "subspace/proclus.h"

namespace multiclust {
namespace {

// ---- scratch-directory helper --------------------------------------------

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/multiclust_ckpt_XXXXXX";
    char* got = mkdtemp(tmpl);
    path_ = got != nullptr ? got : "/tmp";
  }
  ~TempDir() {
    // Best-effort cleanup of the flat checkpoint files + the directory.
    Checkpointer(path_).Clear();
    remove(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Matrix BlobData(uint64_t seed = 21) {
  auto ds = MakeBlobs(
      {{{0, 0}, 0.6, 20}, {{6, 0}, 0.6, 20}, {{3, 5}, 0.6, 20}}, seed);
  return ds->data();
}

// ---- artifact fundamentals -----------------------------------------------

TEST(CheckpointStoreTest, Crc32KnownVectors) {
  // zlib's crc32("123456789") reference value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
}

TEST(CheckpointStoreTest, WriteRestoreRoundTrip) {
  TempDir dir;
  Checkpointer ck(dir.path());
  const Status st = ck.Flush("alg", 42, [](json::Writer* w) {
    w->BeginObject();
    w->Key("x");
    w->Double(0.1 + 0.2);  // a value with a non-trivial shortest form
    w->Key("v");
    ckpt::WriteU64(w, 0xDEADBEEFCAFEBABEULL);
    w->EndObject();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  auto restored = ck.TryRestore("alg", 42, nullptr);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->sequence, 1u);
  EXPECT_EQ(restored->payload.GetNumber("x", 0.0), 0.1 + 0.2);
  auto v = ckpt::U64Field(restored->payload, "v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0xDEADBEEFCAFEBABEULL);
}

TEST(CheckpointStoreTest, FingerprintMismatchIsStale) {
  TempDir dir;
  Checkpointer ck(dir.path());
  ASSERT_TRUE(ck.Flush("alg", 1, [](json::Writer* w) {
                  w->BeginObject();
                  w->EndObject();
                }).ok());
  RunDiagnostics diag;
  EXPECT_FALSE(ck.TryRestore("alg", 2, &diag).has_value());
  ASSERT_EQ(diag.warnings.size(), 1u);
  EXPECT_NE(diag.warnings[0].find("different configuration"),
            std::string::npos);
  // The matching fingerprint still restores.
  EXPECT_TRUE(ck.TryRestore("alg", 1, nullptr).has_value());
}

TEST(CheckpointStoreTest, AlgorithmSlotsAreIndependent) {
  TempDir dir;
  Checkpointer ck(dir.path());
  auto payload = [](json::Writer* w) {
    w->BeginObject();
    w->EndObject();
  };
  ASSERT_TRUE(ck.Flush("alpha", 7, payload).ok());
  ASSERT_TRUE(ck.Flush("beta", 7, payload).ok());
  EXPECT_TRUE(ck.TryRestore("alpha", 7, nullptr).has_value());
  EXPECT_TRUE(ck.TryRestore("beta", 7, nullptr).has_value());
  EXPECT_FALSE(ck.TryRestore("gamma", 7, nullptr).has_value());
}

TEST(CheckpointStoreTest, RotationKeepsExactlyN) {
  TempDir dir;
  CheckpointPolicy policy;
  policy.keep_last = 3;
  Checkpointer ck(dir.path(), policy);
  auto payload = [](json::Writer* w) {
    w->BeginObject();
    w->EndObject();
  };
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(ck.Flush("alg", 9, payload).ok());
  EXPECT_EQ(ck.snapshots_written(), 7u);
  // Newest survives with its original (monotonic) sequence number.
  auto restored = ck.TryRestore("alg", 9, nullptr);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->sequence, 7u);
  // Exactly keep_last files remain: count via a fresh checkpointer's
  // Clear() after deleting — instead, probe the oldest surviving one by
  // corrupting newer files one at a time. Simpler: list via ifstream on
  // the known names.
  int present = 0;
  for (uint64_t seq = 1; seq <= 7; ++seq) {
    char name[128];
    std::snprintf(name, sizeof(name), "%s/alg.%020llu.ckpt.json",
                  dir.path().c_str(), static_cast<unsigned long long>(seq));
    std::ifstream f(name);
    if (f.good()) ++present;
  }
  EXPECT_EQ(present, 3);
}

TEST(CheckpointStoreTest, ClearRemovesEverything) {
  TempDir dir;
  Checkpointer ck(dir.path());
  auto payload = [](json::Writer* w) {
    w->BeginObject();
    w->EndObject();
  };
  ASSERT_TRUE(ck.Flush("a", 1, payload).ok());
  ASSERT_TRUE(ck.Flush("b", 1, payload).ok());
  ASSERT_TRUE(ck.Clear().ok());
  EXPECT_FALSE(ck.TryRestore("a", 1, nullptr).has_value());
  EXPECT_FALSE(ck.TryRestore("b", 1, nullptr).has_value());
}

TEST(CheckpointStoreTest, MissingDirectoryIsColdStartNotError) {
  Checkpointer ck("/tmp/multiclust_ckpt_does_not_exist_12345");
  RunDiagnostics diag;
  EXPECT_FALSE(ck.TryRestore("alg", 1, &diag).has_value());
  EXPECT_TRUE(diag.warnings.empty());  // absent dir = clean cold start
}

TEST(CheckpointStoreTest, NestedCheckpointDirectoryIsCreatedRecursively) {
  TempDir base;
  // Several missing levels at once — EnsureDir must behave like mkdir -p.
  const std::string nested = base.path() + "/runs/2026/shard-a";
  Checkpointer ck(nested);
  const Status st = ck.Flush("alg", 3, [](json::Writer* w) {
    w->BeginObject();
    w->EndObject();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(ck.TryRestore("alg", 3, nullptr).has_value());
  // Cleanup the nested tree (TempDir only removes its own level).
  ASSERT_TRUE(Checkpointer(nested).Clear().ok());
  remove(nested.c_str());
  remove((base.path() + "/runs/2026").c_str());
  remove((base.path() + "/runs").c_str());
}

// ---- corruption matrix ---------------------------------------------------

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ck_ = std::make_unique<Checkpointer>(dir_.path());
    const Status st = ck_->Flush("alg", 5, [](json::Writer* w) {
      w->BeginObject();
      w->Key("iter");
      w->Uint(12);
      w->EndObject();
    });
    ASSERT_TRUE(st.ok());
    char name[128];
    std::snprintf(name, sizeof(name), "%s/alg.%020llu.ckpt.json",
                  dir_.path().c_str(), 1ULL);
    path_ = name;
  }

  std::string ReadFile() {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  void WriteFile(const std::string& text) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << text;
  }

  // Restoring must fail, with exactly one warning mentioning `needle`.
  void ExpectColdStart(const char* needle) {
    RunDiagnostics diag;
    EXPECT_FALSE(ck_->TryRestore("alg", 5, &diag).has_value());
    ASSERT_EQ(diag.warnings.size(), 1u) << "warnings: " << diag.warnings.size();
    EXPECT_NE(diag.warnings[0].find(needle), std::string::npos)
        << diag.warnings[0];
  }

  TempDir dir_;
  std::unique_ptr<Checkpointer> ck_;
  std::string path_;
};

TEST_F(CorruptionTest, TruncatedFile) {
  const std::string text = ReadFile();
  WriteFile(text.substr(0, text.size() / 2));
  ExpectColdStart("corrupt");
}

TEST_F(CorruptionTest, FlippedByteInPayload) {
  std::string text = ReadFile();
  // Flip a digit inside the payload ("iter":12 -> "iter":13): the JSON
  // stays well-formed, only the CRC catches it.
  const size_t pos = text.find("\"iter\":12");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 8] = '3';
  WriteFile(text);
  ExpectColdStart("CRC-32");
}

TEST_F(CorruptionTest, WrongSchemaVersion) {
  std::string text = ReadFile();
  const size_t pos = text.find("\"schema_version\":1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 18, "\"schema_version\":9");
  WriteFile(text);
  ExpectColdStart("unsupported schema");
}

TEST_F(CorruptionTest, WrongKind) {
  std::string text = ReadFile();
  const size_t pos = text.find("multiclust.checkpoint");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 21, "multiclust.elsewhiche");
  WriteFile(text);
  ExpectColdStart("unsupported schema");
}

TEST_F(CorruptionTest, MissingField) {
  // Drop the crc32 member entirely.
  std::string text = ReadFile();
  const size_t pos = text.find(",\"crc32\":");
  ASSERT_NE(pos, std::string::npos);
  const size_t end = text.find(',', pos + 1);
  ASSERT_NE(end, std::string::npos);
  text.erase(pos, end - pos);
  WriteFile(text);
  ExpectColdStart("missing payload or checksum");
}

TEST_F(CorruptionTest, OlderValidCheckpointStillRestores) {
  // A corrupt newest file falls back to the previous valid one.
  ASSERT_TRUE(ck_->Flush("alg", 5, [](json::Writer* w) {
                  w->BeginObject();
                  w->Key("iter");
                  w->Uint(20);
                  w->EndObject();
                }).ok());
  char newest[128];
  std::snprintf(newest, sizeof(newest), "%s/alg.%020llu.ckpt.json",
                dir_.path().c_str(), 2ULL);
  {
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out << "{garbage";
  }
  RunDiagnostics diag;
  auto restored = ck_->TryRestore("alg", 5, &diag);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->sequence, 1u);
  EXPECT_EQ(restored->payload.GetNumber("iter", 0.0), 12.0);
  EXPECT_EQ(diag.warnings.size(), 1u);
}

// ---- serialization helpers ----------------------------------------------

TEST(CheckpointSerdeTest, RngRoundTripContinuesStream) {
  Rng a(12345);
  for (int i = 0; i < 17; ++i) a.NextU64();
  a.NextGaussian();  // prime the Box-Muller cache

  json::Writer w;
  ckpt::WriteRng(&w, a);
  auto parsed = json::Parse(w.str());
  ASSERT_TRUE(parsed.ok());
  auto b = ckpt::ReadRng(*parsed);
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b->NextU64());
  }
  EXPECT_EQ(a.NextGaussian(), b->NextGaussian());
}

TEST(CheckpointSerdeTest, MatrixRoundTripBitIdentical) {
  Matrix m(3, 2);
  Rng rng(7);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) m.at(i, j) = rng.NextGaussian() * 1e-7;
  }
  json::Writer w;
  ckpt::WriteMatrix(&w, m);
  auto parsed = json::Parse(w.str());
  ASSERT_TRUE(parsed.ok());
  auto back = ckpt::ReadMatrix(*parsed);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->rows(), 3u);
  ASSERT_EQ(back->cols(), 2u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(m.at(i, j), back->at(i, j));  // bitwise, not approx
    }
  }
}

TEST(CheckpointSerdeTest, FingerprintSensitivity) {
  Matrix m(2, 2);
  m.at(0, 0) = 1.0;
  const uint64_t base =
      Fingerprint().Mix("alg").Mix(uint64_t{3}).Mix(m).value();
  EXPECT_EQ(base, Fingerprint().Mix("alg").Mix(uint64_t{3}).Mix(m).value());
  EXPECT_NE(base, Fingerprint().Mix("alg").Mix(uint64_t{4}).Mix(m).value());
  m.at(1, 1) = 1e-300;
  EXPECT_NE(base, Fingerprint().Mix("alg").Mix(uint64_t{3}).Mix(m).value());
}

// ---- crash/resume oracle -------------------------------------------------

#if defined(MULTICLUST_FAULT_INJECTION)

// Runs `run()` killing it at persistence point `crash_step` (snapshot-then-
// abort), then resumes from the checkpoint directory. Returns the number of
// crash points exercised before the run completes without the fault firing.
//
// The oracle: every resumed final result must equal `baseline` bit-for-bit
// (the caller's comparator enforces it).
template <typename RunFn, typename CompareFn>
int CrashAtEveryStep(const std::string& site, RunFn&& run,
                     CompareFn&& compare, int max_steps = 200) {
  int exercised = 0;
  for (int crash_step = 0; crash_step < max_steps; ++crash_step) {
    TempDir dir;
    CheckpointPolicy policy;  // every persistence point
    Checkpointer ck(dir.path(), policy);

    fault::Reset();
    FaultSpec spec;
    spec.site = site;
    spec.kind = FaultKind::kCrash;
    spec.at_iteration = static_cast<size_t>(crash_step);
    spec.max_fires = 1;
    fault::Arm(spec);
    auto crashed = run(&ck);
    fault::Reset();
    if (crashed.ok()) {
      // The run outlived every persistence point: the sweep is complete.
      compare(*crashed);
      return exercised;
    }
    EXPECT_EQ(crashed.status().code(), StatusCode::kAborted)
        << crashed.status().ToString();

    // Resume: same directory, no armed fault.
    Checkpointer resume_ck(dir.path(), policy);
    auto resumed = run(&resume_ck);
    if (!resumed.ok()) {
      ADD_FAILURE() << site << ": resume after crash at step " << crash_step
                    << " failed: " << resumed.status().ToString();
      return exercised;
    }
    compare(*resumed);
    ++exercised;
  }
  ADD_FAILURE() << site << ": run still crashing after " << max_steps
                << " persistence points";
  return exercised;
}

TEST(CrashResumeTest, KMeansBitIdenticalAtEveryStep) {
  const Matrix data = BlobData();
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 3;
  opts.max_iters = 12;
  opts.seed = 77;

  auto baseline = RunKMeans(data, opts);
  ASSERT_TRUE(baseline.ok());

  auto run = [&](Checkpointer* ck) {
    KMeansOptions o = opts;
    o.budget.checkpoint = ck;
    return RunKMeans(data, o);
  };
  auto compare = [&](const Clustering& c) {
    EXPECT_EQ(c.labels, baseline->labels);
    EXPECT_EQ(c.quality, baseline->quality);  // bitwise
    EXPECT_EQ(c.iterations, baseline->iterations);
    EXPECT_EQ(c.converged, baseline->converged);
  };
  const int exercised = CrashAtEveryStep("kmeans", run, compare);
  EXPECT_GT(exercised, 0);
}

TEST(CrashResumeTest, GmmBitIdenticalAtEveryStep) {
  const Matrix data = BlobData(31);
  GmmOptions opts;
  opts.k = 3;
  opts.restarts = 2;
  opts.max_iters = 10;
  opts.seed = 5;

  auto baseline = RunGmm(data, opts);
  ASSERT_TRUE(baseline.ok());

  auto run = [&](Checkpointer* ck) {
    GmmOptions o = opts;
    o.budget.checkpoint = ck;
    return RunGmm(data, o);
  };
  auto compare = [&](const Clustering& c) {
    EXPECT_EQ(c.labels, baseline->labels);
    EXPECT_EQ(c.quality, baseline->quality);  // bitwise log-likelihood
    EXPECT_EQ(c.iterations, baseline->iterations);
    EXPECT_EQ(c.converged, baseline->converged);
  };
  const int exercised = CrashAtEveryStep("gmm", run, compare);
  EXPECT_GT(exercised, 0);
}

TEST(CrashResumeTest, SpectralBitIdenticalAtEveryStep) {
  const Matrix data = BlobData(11);
  SpectralOptions opts;
  opts.k = 3;
  opts.kmeans_restarts = 2;
  opts.seed = 9;

  auto baseline = RunSpectral(data, opts);
  ASSERT_TRUE(baseline.ok());

  // Spectral checkpoints live in the embedded k-means slot, so the crash
  // site is "kmeans"; the whole front half (affinity, eigensolve, embed)
  // is deterministic recomputation on resume.
  auto run = [&](Checkpointer* ck) {
    SpectralOptions o = opts;
    o.budget.checkpoint = ck;
    return RunSpectral(data, o);
  };
  auto compare = [&](const Clustering& c) {
    EXPECT_EQ(c.labels, baseline->labels);
    EXPECT_EQ(c.quality, baseline->quality);
    EXPECT_EQ(c.iterations, baseline->iterations);
    EXPECT_EQ(c.converged, baseline->converged);
  };
  const int exercised = CrashAtEveryStep("kmeans", run, compare);
  EXPECT_GT(exercised, 0);
}

TEST(CrashResumeTest, DecKMeansBitIdenticalAtEveryStep) {
  const Matrix data = BlobData(41);
  DecKMeansOptions opts;
  opts.ks = {2, 2};
  opts.restarts = 2;
  opts.max_iters = 8;
  opts.seed = 13;

  auto baseline = RunDecorrelatedKMeans(data, opts);
  ASSERT_TRUE(baseline.ok());

  auto run = [&](Checkpointer* ck) {
    DecKMeansOptions o = opts;
    o.budget.checkpoint = ck;
    return RunDecorrelatedKMeans(data, o);
  };
  auto compare = [&](const DecKMeansResult& r) {
    ASSERT_EQ(r.solutions.size(), baseline->solutions.size());
    for (size_t t = 0; t < r.solutions.size(); ++t) {
      EXPECT_EQ(r.solutions.at(t).labels, baseline->solutions.at(t).labels);
      EXPECT_EQ(r.solutions.at(t).quality, baseline->solutions.at(t).quality);
    }
    EXPECT_EQ(r.objective, baseline->objective);  // bitwise
    EXPECT_EQ(r.history, baseline->history);
    EXPECT_EQ(r.iterations, baseline->iterations);
    EXPECT_EQ(r.converged, baseline->converged);
  };
  const int exercised = CrashAtEveryStep("dec-kmeans", run, compare);
  EXPECT_GT(exercised, 0);
}

TEST(CrashResumeTest, CoalaBitIdenticalAtEveryStep) {
  // Small n: COALA has one persistence point per merge (n - k of them) and
  // the sweep reruns the whole dendrogram per crash point.
  auto ds = MakeBlobs({{{0, 0}, 0.6, 8}, {{6, 0}, 0.6, 8}, {{3, 5}, 0.6, 8}},
                      51);
  const Matrix data = ds->data();
  // Given clustering: the generating blob index (8 points per blob).
  std::vector<int> given(data.rows());
  for (size_t i = 0; i < given.size(); ++i) {
    given[i] = static_cast<int>(i / 8);
  }
  CoalaOptions opts;
  opts.k = 3;
  opts.w = 0.8;

  auto baseline = RunCoala(data, given, opts);
  ASSERT_TRUE(baseline.ok());

  auto run = [&](Checkpointer* ck) {
    CoalaOptions o = opts;
    o.budget.checkpoint = ck;
    return RunCoala(data, given, o);
  };
  auto compare = [&](const Clustering& c) {
    EXPECT_EQ(c.labels, baseline->labels);
    EXPECT_EQ(c.iterations, baseline->iterations);
    EXPECT_EQ(c.converged, baseline->converged);
  };
  const int exercised = CrashAtEveryStep("coala", run, compare);
  EXPECT_GT(exercised, 0);
}

TEST(CrashResumeTest, CoEmBitIdenticalAtEveryStep) {
  const Matrix view1 = BlobData(61);
  const Matrix view2 = BlobData(62);  // same n, independent geometry
  CoEmOptions opts;
  opts.k = 3;
  opts.max_iters = 15;
  opts.patience = 3;
  opts.seed = 17;

  auto baseline = RunCoEm(view1, view2, opts);
  ASSERT_TRUE(baseline.ok());

  auto run = [&](Checkpointer* ck) {
    CoEmOptions o = opts;
    o.budget.checkpoint = ck;
    return RunCoEm(view1, view2, o);
  };
  auto compare = [&](const CoEmResult& r) {
    EXPECT_EQ(r.labels_view1, baseline->labels_view1);
    EXPECT_EQ(r.labels_view2, baseline->labels_view2);
    EXPECT_EQ(r.consensus.labels, baseline->consensus.labels);
    EXPECT_EQ(r.log_likelihood_view1, baseline->log_likelihood_view1);
    EXPECT_EQ(r.log_likelihood_view2, baseline->log_likelihood_view2);
    EXPECT_EQ(r.agreement, baseline->agreement);
    EXPECT_EQ(r.iterations, baseline->iterations);
    EXPECT_EQ(r.converged, baseline->converged);
  };
  const int exercised = CrashAtEveryStep("co-em", run, compare);
  EXPECT_GT(exercised, 0);
}

TEST(CrashResumeTest, OrclusBitIdenticalAtEveryStep) {
  const Matrix data = BlobData(71);
  OrclusOptions opts;
  opts.k = 3;
  opts.l = 2;
  opts.a_factor = 2;
  opts.max_iters = 5;
  opts.restarts = 2;
  opts.seed = 23;

  auto baseline = RunOrclus(data, opts);
  ASSERT_TRUE(baseline.ok());

  auto run = [&](Checkpointer* ck) {
    OrclusOptions o = opts;
    o.budget.checkpoint = ck;
    return RunOrclus(data, o);
  };
  auto compare = [&](const OrclusResult& r) {
    EXPECT_EQ(r.clustering.labels, baseline->clustering.labels);
    EXPECT_EQ(r.projected_energy, baseline->projected_energy);  // bitwise
    EXPECT_EQ(r.clustering.iterations, baseline->clustering.iterations);
    EXPECT_EQ(r.clustering.converged, baseline->clustering.converged);
    ASSERT_EQ(r.subspaces.size(), baseline->subspaces.size());
  };
  const int exercised = CrashAtEveryStep("orclus", run, compare);
  EXPECT_GT(exercised, 0);
}

TEST(CrashResumeTest, ProclusBitIdenticalAtEveryStep) {
  const Matrix data = BlobData(81);
  ProclusOptions opts;
  opts.k = 3;
  opts.avg_dims = 2;
  opts.max_iters = 8;
  opts.seed = 29;

  auto baseline = RunProclus(data, opts);
  ASSERT_TRUE(baseline.ok());

  auto run = [&](Checkpointer* ck) {
    ProclusOptions o = opts;
    o.budget.checkpoint = ck;
    return RunProclus(data, o);
  };
  auto compare = [&](const ProclusResult& r) {
    EXPECT_EQ(r.clustering.labels, baseline->clustering.labels);
    EXPECT_EQ(r.clustering.quality, baseline->clustering.quality);
    EXPECT_EQ(r.clustering.iterations, baseline->clustering.iterations);
    EXPECT_EQ(r.clustering.converged, baseline->clustering.converged);
    EXPECT_EQ(r.dims, baseline->dims);
  };
  const int exercised = CrashAtEveryStep("proclus", run, compare);
  EXPECT_GT(exercised, 0);
}

// Compares every deterministic field of a DiscoveryReport (wall-clock
// timings excluded) bit-for-bit.
void ExpectReportsEqual(const DiscoveryReport& got,
                        const DiscoveryReport& want) {
  EXPECT_EQ(got.chosen_k, want.chosen_k);
  EXPECT_EQ(got.strategy_name, want.strategy_name);
  EXPECT_EQ(got.warnings, want.warnings);
  EXPECT_EQ(got.degraded, want.degraded);
  ASSERT_EQ(got.solutions.size(), want.solutions.size());
  for (size_t s = 0; s < got.solutions.size(); ++s) {
    EXPECT_EQ(got.solutions.at(s).labels, want.solutions.at(s).labels);
    EXPECT_EQ(got.solutions.at(s).quality, want.solutions.at(s).quality);
    EXPECT_EQ(got.solutions.at(s).algorithm, want.solutions.at(s).algorithm);
  }
  EXPECT_EQ(got.objective.qualities, want.objective.qualities);
  EXPECT_EQ(got.objective.mean_quality, want.objective.mean_quality);
  EXPECT_EQ(got.objective.mean_dissimilarity,
            want.objective.mean_dissimilarity);
  EXPECT_EQ(got.objective.combined, want.objective.combined);
  ASSERT_EQ(got.attempts.size(), want.attempts.size());
  for (size_t a = 0; a < got.attempts.size(); ++a) {
    EXPECT_EQ(got.attempts[a].algorithm, want.attempts[a].algorithm);
    EXPECT_EQ(got.attempts[a].iterations, want.attempts[a].iterations);
    EXPECT_EQ(got.attempts[a].converged, want.attempts[a].converged);
  }
}

// Crash inside the strategy (the inner dec-kmeans persistence points): the
// kAborted must propagate out of the pipeline un-salvaged, and the resumed
// discovery must replay the inner algorithm from its own checkpoint slot.
TEST(CrashResumeTest, PipelineInnerCrashBitIdenticalAtEveryStep) {
  const Matrix data = BlobData(91);
  DiscoveryOptions opts;
  opts.strategy = DiscoveryStrategy::kDecorrelatedKMeans;
  opts.num_solutions = 2;
  opts.k = 3;
  opts.seed = 43;

  auto baseline = DiscoverMultipleClusterings(data, opts);
  ASSERT_TRUE(baseline.ok());

  auto run = [&](Checkpointer* ck) {
    DiscoveryOptions o = opts;
    o.budget.checkpoint = ck;
    return DiscoverMultipleClusterings(data, o);
  };
  auto compare = [&](const DiscoveryReport& r) {
    ExpectReportsEqual(r, *baseline);
  };
  const int exercised = CrashAtEveryStep("dec-kmeans", run, compare);
  EXPECT_GT(exercised, 0);
}

// Crash at the pipeline's own stage boundaries (after model selection, after
// a solved attempt). k = 0 so the restored chosen_k actually carries the
// model-selection stage across the crash.
TEST(CrashResumeTest, PipelineStageCrashBitIdenticalAtEveryStep) {
  const Matrix data = BlobData(92);
  DiscoveryOptions opts;
  opts.strategy = DiscoveryStrategy::kDecorrelatedKMeans;
  opts.num_solutions = 2;
  opts.k = 0;  // exercise SelectKBySilhouette + the chosen_k snapshot
  opts.max_k = 4;
  opts.seed = 47;

  auto baseline = DiscoverMultipleClusterings(data, opts);
  ASSERT_TRUE(baseline.ok());

  auto run = [&](Checkpointer* ck) {
    DiscoveryOptions o = opts;
    o.budget.checkpoint = ck;
    return DiscoverMultipleClusterings(data, o);
  };
  auto compare = [&](const DiscoveryReport& r) {
    ExpectReportsEqual(r, *baseline);
  };
  const int exercised = CrashAtEveryStep("pipeline", run, compare);
  EXPECT_GT(exercised, 0);
}

// ---- rotation under injected I/O failure ---------------------------------

// The invariant these tests pin down: keep-last-N rotation must never
// delete the last good snapshot when a newer write failed. Every failed
// write is detected (reported error or read-back verification), does not
// count as written, and leaves the previous snapshot restorable.
class RotationUnderIoFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Reset();
    CheckpointPolicy policy;
    policy.keep_last = 1;  // tightest rotation: one bad write is fatal
    ck_ = std::make_unique<Checkpointer>(dir_.path(), policy);
    ASSERT_TRUE(ck_->Flush("alg", 1, Payload()).ok());  // write attempt 0
    ASSERT_EQ(ck_->snapshots_written(), 1u);
  }
  void TearDown() override { fault::Reset(); }

  static FunctionRef<void(json::Writer*)> Payload() {
    static const auto payload = [](json::Writer* w) {
      w->BeginObject();
      w->Key("iter");
      w->Uint(7);
      w->EndObject();
    };
    return payload;
  }

  // Arms `kind` against the second write attempt (io_step 1).
  void ArmAtNextWrite(FaultKind kind) {
    FaultSpec spec;
    spec.site = "checkpoint";
    spec.kind = kind;
    spec.at_iteration = 1;
    spec.max_fires = 1;
    fault::Arm(spec);
  }

  void ExpectLastGoodSnapshotSurvives() {
    EXPECT_EQ(ck_->snapshots_written(), 1u);
    auto restored = ck_->TryRestore("alg", 1, nullptr);
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->sequence, 1u);
    // And the channel recovers: the next clean write rotates normally.
    fault::Reset();
    ASSERT_TRUE(ck_->Flush("alg", 1, Payload()).ok());
    auto newest = ck_->TryRestore("alg", 1, nullptr);
    ASSERT_TRUE(newest.has_value());
    EXPECT_GT(newest->sequence, 1u);
  }

  TempDir dir_;
  std::unique_ptr<Checkpointer> ck_;
};

TEST_F(RotationUnderIoFaultTest, FailedWrite) {
  ArmAtNextWrite(FaultKind::kIoWriteFail);
  EXPECT_FALSE(ck_->Flush("alg", 1, Payload()).ok());
  ExpectLastGoodSnapshotSurvives();
}

TEST_F(RotationUnderIoFaultTest, ShortWrite) {
  ArmAtNextWrite(FaultKind::kIoShortWrite);
  EXPECT_FALSE(ck_->Flush("alg", 1, Payload()).ok());
  ExpectLastGoodSnapshotSurvives();
}

TEST_F(RotationUnderIoFaultTest, FailedFsync) {
  ArmAtNextWrite(FaultKind::kIoFsyncFail);
  EXPECT_FALSE(ck_->Flush("alg", 1, Payload()).ok());
  ExpectLastGoodSnapshotSurvives();
}

TEST_F(RotationUnderIoFaultTest, FailedRename) {
  ArmAtNextWrite(FaultKind::kIoRenameFail);
  EXPECT_FALSE(ck_->Flush("alg", 1, Payload()).ok());
  ExpectLastGoodSnapshotSurvives();
}

TEST_F(RotationUnderIoFaultTest, TornWriteIsCaughtByReadBackVerification) {
  ArmAtNextWrite(FaultKind::kIoTornWrite);
  // The tear itself is silent — the write path reports success — so only
  // read-back verification stands between it and the rotation pass.
  const Status st = ck_->Flush("alg", 1, Payload());
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("read-back"), std::string::npos);
  ExpectLastGoodSnapshotSurvives();
}

TEST_F(RotationUnderIoFaultTest, CorruptAfterWriteIsCaughtByRestoreCrc) {
  // kCheckpointCorrupt models post-write bit rot: the snapshot counts (it
  // was genuinely good when written), but restore must reject it and fall
  // back to the previous good snapshot.
  // keep_last = 1 would rotate the good file out before the rot lands, so
  // use a fresh channel (own write-attempt counter) with room for both.
  CheckpointPolicy policy;
  policy.keep_last = 2;
  Checkpointer ck(dir_.path(), policy);
  FaultSpec rot;
  rot.site = "checkpoint";
  rot.kind = FaultKind::kCheckpointCorrupt;
  rot.at_iteration = 0;  // the fresh channel's first write attempt
  rot.max_fires = 1;
  fault::Arm(rot);
  ASSERT_TRUE(ck.Flush("alg", 1, Payload()).ok());  // written, then rotted
  fault::Reset();
  RunDiagnostics diag;
  auto restored = ck.TryRestore("alg", 1, &diag);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->sequence, 1u);  // the older, still-good snapshot
  EXPECT_FALSE(diag.warnings.empty());
}

#endif  // MULTICLUST_FAULT_INJECTION

}  // namespace
}  // namespace multiclust
