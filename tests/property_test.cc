// Cross-module property tests: parameterised sweeps asserting the
// invariants the algorithms are built on.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "common/rng.h"
#include "core/solution_set.h"
#include "data/generators.h"
#include "linalg/decomposition.h"
#include "metrics/partition_similarity.h"
#include "stats/entropy.h"
#include "stats/grid.h"
#include "subspace/clique.h"
#include "subspace/osclu.h"

namespace multiclust {
namespace {

// ---------------------------------------------------------------------
// Information-theoretic identities on random labelings.
class InfoTheoryProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InfoTheoryProperty, EntropyIdentities) {
  Rng rng(GetParam());
  const size_t n = 80;
  std::vector<int> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int>(rng.NextIndex(4));
    b[i] = static_cast<int>(rng.NextIndex(3));
  }
  const double ha = LabelEntropy(a);
  const double hb = LabelEntropy(b);
  const double mi = MutualInformation(a, b).value();
  const double hab = JointEntropy(a, b).value();
  const double ha_given_b = ConditionalEntropy(a, b).value();
  // 0 <= I <= min(H).
  EXPECT_GE(mi, -1e-12);
  EXPECT_LE(mi, std::min(ha, hb) + 1e-9);
  // H(A,B) = H(A) + H(B) - I(A;B).
  EXPECT_NEAR(hab, ha + hb - mi, 1e-9);
  // H(A|B) = H(A) - I(A;B).
  EXPECT_NEAR(ha_given_b, ha - mi, 1e-9);
  // H(A,B) <= H(A) + H(B).
  EXPECT_LE(hab, ha + hb + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InfoTheoryProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------
// Pair-counting measures: consistency relations on random labelings.
class PairCountingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PairCountingProperty, MeasureRelations) {
  Rng rng(GetParam() * 31);
  const size_t n = 50;
  std::vector<int> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int>(rng.NextIndex(3));
    b[i] = static_cast<int>(rng.NextIndex(5));
  }
  const double jac = JaccardIndex(a, b).value();
  const double fm = FowlkesMallows(a, b).value();
  const double f1 = PairF1(a, b).value();
  // Jaccard <= F1 (harmonic of P/R over the same pair counts).
  EXPECT_LE(jac, f1 + 1e-12);
  // F1 <= Fowlkes-Mallows (harmonic <= geometric mean).
  EXPECT_LE(f1, fm + 1e-12);
  // Symmetry of all three.
  EXPECT_NEAR(jac, JaccardIndex(b, a).value(), 1e-12);
  EXPECT_NEAR(fm, FowlkesMallows(b, a).value(), 1e-12);
  EXPECT_NEAR(f1, PairF1(b, a).value(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairCountingProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------
// SVD-based transforms behave as exact inverses on random SPD matrices.
class TransformProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransformProperty, InverseSqrtWhitens) {
  Rng rng(GetParam() * 7);
  const size_t d = 3 + GetParam() % 4;
  Matrix a(d + 3, d);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < d; ++j) a.at(i, j) = rng.Gaussian(0, 1);
  }
  Matrix spd = a.Transpose() * a;
  for (size_t i = 0; i < d; ++i) spd.at(i, i) += 0.3;
  auto w = InverseSqrtSymmetric(spd);
  ASSERT_TRUE(w.ok());
  EXPECT_LT((*w * spd * *w).MaxAbsDiff(Matrix::Identity(d)), 1e-6);
  auto s = SqrtSymmetric(spd);
  ASSERT_TRUE(s.ok());
  EXPECT_LT((*s * *s).MaxAbsDiff(spd), 1e-6 * (1 + spd.FrobeniusNorm()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------
// Grid entropy is monotone non-decreasing as dimensions are added, for any
// data distribution (the downward-closure ENCLUS relies on).
class GridEntropyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridEntropyProperty, MonotoneInDims) {
  const uint64_t seed = GetParam();
  auto ds = seed % 2 == 0
                ? MakeUniformCube(150, 4, seed)
                : MakeBlobs({{{0, 0, 0, 0}, 1.0, 75},
                             {{5, 5, 5, 5}, 1.0, 75}},
                            seed);
  ASSERT_TRUE(ds.ok());
  auto grid = Grid::Build(ds->data(), 5);
  ASSERT_TRUE(grid.ok());
  double prev = 0.0;
  std::vector<size_t> dims;
  for (size_t j = 0; j < 4; ++j) {
    dims.push_back(j);
    const double h = grid->SubspaceEntropy(dims);
    EXPECT_GE(h, prev - 1e-9) << "dims up to " << j;
    prev = h;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridEntropyProperty,
                         ::testing::Range<uint64_t>(1, 7));

// ---------------------------------------------------------------------
// CLIQUE support threshold: raising tau can only shrink the result.
class CliqueMonotonicityProperty : public ::testing::TestWithParam<double> {};

TEST_P(CliqueMonotonicityProperty, StricterTauSmallerResult) {
  auto ds = MakeFourSquares(40, 8.0, 0.8, 77);
  ASSERT_TRUE(ds.ok());
  CliqueOptions loose;
  loose.xi = 6;
  loose.tau = GetParam();
  CliqueOptions strict = loose;
  strict.tau = GetParam() * 2.0;
  auto r_loose = RunClique(ds->data(), loose);
  auto r_strict = RunClique(ds->data(), strict);
  ASSERT_TRUE(r_loose.ok() && r_strict.ok());
  EXPECT_LE(r_strict->clusters.size(), r_loose->clusters.size());
}

INSTANTIATE_TEST_SUITE_P(Taus, CliqueMonotonicityProperty,
                         ::testing::Values(0.01, 0.02, 0.05, 0.1));

// ---------------------------------------------------------------------
// k-means: optimal SSE is non-increasing in k (checked via restarts).
class KMeansSseProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KMeansSseProperty, SseNonIncreasingInK) {
  auto ds = MakeBlobs({{{0, 0}, 1.0, 40},
                       {{6, 0}, 1.0, 40},
                       {{0, 6}, 1.0, 40}},
                      GetParam());
  ASSERT_TRUE(ds.ok());
  double prev = 1e300;
  for (size_t k = 1; k <= 6; ++k) {
    KMeansOptions opts;
    opts.k = k;
    opts.restarts = 8;
    opts.seed = GetParam();
    const double sse = RunKMeans(ds->data(), opts)->quality;
    EXPECT_LE(sse, prev * 1.02 + 1e-9) << "k=" << k;
    prev = sse;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KMeansSseProperty,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------
// DBSCAN labels are a valid clustering: labels in [-1, k), every non-noise
// cluster has at least one core point neighbourhood behind it.
class DbscanValidityProperty : public ::testing::TestWithParam<double> {};

TEST_P(DbscanValidityProperty, LabelsWellFormed) {
  auto ds = MakeFourSquares(30, 8.0, 0.7, 13);
  ASSERT_TRUE(ds.ok());
  DbscanOptions opts;
  opts.eps = GetParam();
  opts.min_pts = 4;
  auto c = RunDbscan(ds->data(), opts);
  ASSERT_TRUE(c.ok());
  const size_t k = c->NumClusters();
  std::vector<size_t> sizes(k, 0);
  for (int l : c->labels) {
    EXPECT_GE(l, -1);
    EXPECT_LT(l, static_cast<int>(k));
    if (l >= 0) ++sizes[l];
  }
  // Every cluster contains at least min_pts objects (it holds a core point
  // whose eps-neighbourhood is fully absorbed).
  for (size_t s : sizes) EXPECT_GE(s, opts.min_pts);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, DbscanValidityProperty,
                         ::testing::Values(0.3, 0.6, 1.0, 2.0, 5.0));

// ---------------------------------------------------------------------
// OSCLU selection invariant: the selected set is orthogonal — every member
// keeps alpha-fresh objects against the rest.
class OscluInvariantProperty : public ::testing::TestWithParam<double> {};

TEST_P(OscluInvariantProperty, SelectionIsOrthogonal) {
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 10.0, 0.6, ""};
  views[1] = {2, 2, 10.0, 0.6, ""};
  auto ds = MakeMultiView(150, views, 1, 21);
  ASSERT_TRUE(ds.ok());
  CliqueOptions clique;
  clique.xi = 6;
  clique.tau = 0.04;
  clique.max_dims = 2;
  auto all = RunClique(ds->data(), clique);
  ASSERT_TRUE(all.ok());
  OscluOptions opts;
  opts.beta = 0.5;
  opts.alpha = GetParam();
  auto selected = RunOsclu(*all, opts);
  ASSERT_TRUE(selected.ok());
  for (size_t i = 0; i < selected->clusters.size(); ++i) {
    std::vector<SubspaceCluster> others;
    for (size_t j = 0; j < selected->clusters.size(); ++j) {
      if (j != i) others.push_back(selected->clusters[j]);
    }
    EXPECT_GE(GlobalInterest(selected->clusters[i], others, opts.beta),
              opts.alpha - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, OscluInvariantProperty,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8));

// ---------------------------------------------------------------------
// SolutionSet deduplication is idempotent and order-stable.
class DedupProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DedupProperty, Idempotent) {
  Rng rng(GetParam());
  SolutionSet set;
  for (int s = 0; s < 6; ++s) {
    Clustering c;
    c.labels.resize(40);
    for (auto& l : c.labels) l = static_cast<int>(rng.NextIndex(3));
    ASSERT_TRUE(set.Add(std::move(c)).ok());
  }
  const size_t removed_first = set.Deduplicate(0.3).value();
  const size_t removed_second = set.Deduplicate(0.3).value();
  EXPECT_EQ(removed_second, 0u);
  EXPECT_LE(removed_first, 6u);
  // All surviving pairs are at least 0.3 apart.
  EXPECT_TRUE(set.size() < 2 || set.MinDiversity().value() >= 0.3 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DedupProperty,
                         ::testing::Values(3, 5, 8, 13));

}  // namespace
}  // namespace multiclust
