#include <gtest/gtest.h>

#include "cluster/clustering.h"
#include "cluster/dbscan.h"
#include "cluster/gmm.h"
#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "cluster/spectral.h"
#include "data/generators.h"
#include "metrics/clustering_quality.h"
#include "metrics/partition_similarity.h"

namespace multiclust {
namespace {

Matrix ThreeBlobs(uint64_t seed, size_t per = 50) {
  auto ds = MakeBlobs(
      {{{0, 0}, 0.5, per}, {{10, 0}, 0.5, per}, {{0, 10}, 0.5, per}}, seed);
  return ds->data();
}

std::vector<int> ThreeBlobTruth(size_t per = 50) {
  std::vector<int> t;
  for (int c = 0; c < 3; ++c) t.insert(t.end(), per, c);
  return t;
}

TEST(ClusteringTest, NumClustersAndMembers) {
  Clustering c;
  c.labels = {0, 0, 2, -1, 2};
  EXPECT_EQ(c.NumClusters(), 2u);
  const auto members = c.ClusterMembers();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(members[1], (std::vector<int>{2, 4}));
}

TEST(ClusteringTest, CanonicalizeDensifies) {
  Clustering c;
  c.labels = {7, 7, 3, -1};
  c.Canonicalize();
  EXPECT_EQ(c.labels, (std::vector<int>{0, 0, 1, -1}));
}

TEST(AssignToNearestTest, Basic) {
  const Matrix data = Matrix::FromRows({{0, 0}, {9, 9}});
  const Matrix centers = Matrix::FromRows({{1, 1}, {10, 10}});
  EXPECT_EQ(AssignToNearest(data, centers), (std::vector<int>{0, 1}));
  EXPECT_EQ(AssignToNearest(data, Matrix()), (std::vector<int>{-1, -1}));
}

TEST(KMeansTest, RecoversBlobs) {
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 5;
  opts.seed = 1;
  auto c = RunKMeans(ThreeBlobs(1), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->NumClusters(), 3u);
  EXPECT_GT(AdjustedRandIndex(c->labels, ThreeBlobTruth()).value(), 0.99);
  EXPECT_EQ(c->centroids.rows(), 3u);
  EXPECT_GT(c->quality, 0.0);
}

TEST(KMeansTest, RestartsNeverHurt) {
  const Matrix data = ThreeBlobs(2);
  KMeansOptions one;
  one.k = 3;
  one.restarts = 1;
  one.plus_plus_init = false;
  one.seed = 7;
  KMeansOptions many = one;
  many.restarts = 10;
  const double sse1 = RunKMeans(data, one)->quality;
  const double sse10 = RunKMeans(data, many)->quality;
  EXPECT_LE(sse10, sse1 + 1e-9);
}

TEST(KMeansTest, SseDecreasesWithK) {
  const Matrix data = ThreeBlobs(3);
  double prev = 1e300;
  for (size_t k = 1; k <= 5; ++k) {
    KMeansOptions opts;
    opts.k = k;
    opts.restarts = 5;
    opts.seed = 11;
    const double sse = RunKMeans(data, opts)->quality;
    EXPECT_LE(sse, prev + 1e-6) << "k=" << k;
    prev = sse;
  }
}

TEST(KMeansTest, InvalidArguments) {
  KMeansOptions opts;
  opts.k = 0;
  EXPECT_FALSE(RunKMeans(Matrix(5, 2), opts).ok());
  opts.k = 10;
  EXPECT_FALSE(RunKMeans(Matrix(5, 2), opts).ok());
}

TEST(KMeansTest, DeterministicForSeed) {
  const Matrix data = ThreeBlobs(4);
  KMeansOptions opts;
  opts.k = 3;
  opts.seed = 42;
  auto a = RunKMeans(data, opts);
  auto b = RunKMeans(data, opts);
  EXPECT_EQ(a->labels, b->labels);
}

TEST(KMeansTest, ClustererAdapter) {
  KMeansOptions opts;
  opts.k = 3;
  opts.seed = 5;
  KMeansClusterer clusterer(opts);
  EXPECT_EQ(clusterer.name(), "kmeans");
  auto c = clusterer.Cluster(ThreeBlobs(5));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->NumClusters(), 3u);
}

TEST(GmmTest, RecoversBlobs) {
  GmmOptions opts;
  opts.k = 3;
  opts.restarts = 3;
  opts.seed = 6;
  auto c = RunGmm(ThreeBlobs(6), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(AdjustedRandIndex(c->labels, ThreeBlobTruth()).value(), 0.99);
}

TEST(GmmTest, EmIncreasesLikelihood) {
  const Matrix data = ThreeBlobs(7);
  auto model = InitGmm(data, 3, CovarianceType::kDiagonal, 7);
  ASSERT_TRUE(model.ok());
  double prev = -1e300;
  for (int iter = 0; iter < 10; ++iter) {
    // EmStep returns the log-likelihood *before* the parameter update; the
    // EM guarantee is that this sequence is non-decreasing.
    auto ll = EmStep(data, 1e-6, &model.value());
    ASSERT_TRUE(ll.ok());
    EXPECT_GE(*ll, prev - 1e-6);
    prev = *ll;
  }
}

TEST(GmmTest, ResponsibilitiesSumToOne) {
  const Matrix data = ThreeBlobs(8);
  GmmOptions opts;
  opts.k = 3;
  opts.seed = 8;
  auto model = FitGmm(data, opts);
  ASSERT_TRUE(model.ok());
  for (size_t i = 0; i < 10; ++i) {
    const auto r = model->Responsibilities(data.Row(i));
    double sum = 0;
    for (double x : r) sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(GmmTest, SphericalCovarianceSupported) {
  GmmOptions opts;
  opts.k = 3;
  opts.covariance = CovarianceType::kSpherical;
  opts.seed = 9;
  auto model = FitGmm(ThreeBlobs(9), opts);
  ASSERT_TRUE(model.ok());
  for (const auto& comp : model->components) {
    EXPECT_EQ(comp.variances.size(), 1u);
  }
}

TEST(GmmTest, WeightsSumToOne) {
  GmmOptions opts;
  opts.k = 4;
  opts.seed = 10;
  auto model = FitGmm(ThreeBlobs(10), opts);
  ASSERT_TRUE(model.ok());
  double sum = 0;
  for (const auto& c : model->components) sum += c.weight;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(DbscanTest, RecoversBlobsWithNoiseLabel) {
  auto ds = MakeBlobs({{{0, 0}, 0.3, 60}, {{10, 10}, 0.3, 60}}, 11);
  DbscanOptions opts;
  opts.eps = 1.0;
  opts.min_pts = 4;
  auto c = RunDbscan(ds->data(), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->NumClusters(), 2u);
  EXPECT_GT(AdjustedRandIndex(c->labels, ds->GroundTruth("labels").value())
                .value(),
            0.99);
}

TEST(DbscanTest, RingsAreNonConvexClusters) {
  auto ds = MakeTwoRings(250, 2.0, 6.0, 0.1, 12);
  DbscanOptions opts;
  opts.eps = 1.2;
  opts.min_pts = 4;
  auto c = RunDbscan(ds->data(), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(AdjustedRandIndex(c->labels, ds->GroundTruth("rings").value())
                .value(),
            0.95);
}

TEST(DbscanTest, AllNoiseWhenEpsTiny) {
  auto ds = MakeUniformCube(60, 2, 13);
  DbscanOptions opts;
  opts.eps = 1e-6;
  opts.min_pts = 3;
  auto c = RunDbscan(ds->data(), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->NumClusters(), 0u);
  EXPECT_DOUBLE_EQ(NoiseFraction(c->labels), 1.0);
}

TEST(DbscanTest, InvalidOptions) {
  DbscanOptions opts;
  opts.eps = -1;
  EXPECT_FALSE(RunDbscan(Matrix(3, 1), opts).ok());
  opts.eps = 1;
  opts.min_pts = 0;
  EXPECT_FALSE(RunDbscan(Matrix(3, 1), opts).ok());
}

TEST(HierarchicalTest, FlatCutRecoversBlobs) {
  AgglomerativeOptions opts;
  opts.k = 3;
  opts.linkage = Linkage::kAverage;
  auto r = RunAgglomerative(ThreeBlobs(14, 30), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->flat.NumClusters(), 3u);
  EXPECT_GT(
      AdjustedRandIndex(r->flat.labels, ThreeBlobTruth(30)).value(), 0.99);
  EXPECT_EQ(r->merges.size(), 89u);  // n-1 merges
}

TEST(HierarchicalTest, SingleLinkChainsRings) {
  auto ds = MakeTwoRings(80, 2.0, 6.0, 0.05, 15);
  AgglomerativeOptions opts;
  opts.k = 2;
  opts.linkage = Linkage::kSingle;
  auto r = RunAgglomerative(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(AdjustedRandIndex(r->flat.labels,
                              ds->GroundTruth("rings").value())
                .value(),
            0.95);
}

TEST(HierarchicalTest, MergeDistancesNonDecreasingCompleteLink) {
  AgglomerativeOptions opts;
  opts.k = 1;
  opts.linkage = Linkage::kComplete;
  auto r = RunAgglomerative(ThreeBlobs(16, 15), opts);
  ASSERT_TRUE(r.ok());
  // Complete link is monotone: merge distances never decrease.
  for (size_t i = 1; i < r->merges.size(); ++i) {
    EXPECT_GE(r->merges[i].distance, r->merges[i - 1].distance - 1e-9);
  }
}

TEST(HierarchicalTest, InvalidK) {
  AgglomerativeOptions opts;
  opts.k = 0;
  EXPECT_FALSE(RunAgglomerative(Matrix(3, 1), opts).ok());
  opts.k = 10;
  EXPECT_FALSE(RunAgglomerative(Matrix(3, 1), opts).ok());
}

TEST(SpectralTest, RecoversRings) {
  auto ds = MakeTwoRings(100, 1.5, 6.0, 0.08, 17);
  SpectralOptions opts;
  opts.k = 2;
  opts.gamma = 2.0;
  opts.seed = 17;
  auto c = RunSpectral(ds->data(), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(AdjustedRandIndex(c->labels, ds->GroundTruth("rings").value())
                .value(),
            0.9);
}

TEST(SpectralTest, RecoversBlobs) {
  SpectralOptions opts;
  opts.k = 3;
  opts.seed = 18;
  auto c = RunSpectral(ThreeBlobs(18, 40), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(AdjustedRandIndex(c->labels, ThreeBlobTruth(40)).value(), 0.99);
}

TEST(SpectralTest, InvalidK) {
  SpectralOptions opts;
  opts.k = 0;
  EXPECT_FALSE(RunSpectral(Matrix(5, 2), opts).ok());
}

}  // namespace
}  // namespace multiclust
