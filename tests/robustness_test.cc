// Robustness suite: degenerate inputs that production data regularly
// contains — identical points, constant attributes, n == k, 1-D data,
// duplicated rows. Algorithms must either succeed with a sane result or
// return a Status, never crash or hang.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "altspace/cami.h"
#include "altspace/cib.h"
#include "altspace/coala.h"
#include "altspace/conditional_ensemble.h"
#include "altspace/dec_kmeans.h"
#include "altspace/disparate.h"
#include "altspace/meta_clustering.h"
#include "altspace/min_centropy.h"
#include "cluster/dbscan.h"
#include "cluster/gmm.h"
#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "cluster/spectral.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "linalg/decomposition.h"
#include "metrics/clustering_quality.h"
#include "metrics/partition_similarity.h"
#include "multiview/co_em.h"
#include "multiview/consensus.h"
#include "multiview/mv_dbscan.h"
#include "multiview/mv_spectral.h"
#include "orthogonal/alt_transform.h"
#include "orthogonal/ortho_projection.h"
#include "orthogonal/residual_transform.h"
#include "stats/grid.h"
#include "subspace/clique.h"
#include "subspace/doc.h"
#include "subspace/msc.h"
#include "subspace/orclus.h"
#include "subspace/osclu.h"
#include "subspace/p3c.h"
#include "subspace/predecon.h"
#include "subspace/proclus.h"
#include "subspace/schism.h"
#include "subspace/statpc.h"
#include "subspace/subclu.h"

namespace multiclust {
namespace {

Matrix IdenticalPoints(size_t n, size_t d) {
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) m.at(i, j) = 3.25;
  }
  return m;
}

TEST(RobustnessTest, KMeansOnIdenticalPoints) {
  KMeansOptions opts;
  opts.k = 3;
  opts.seed = 1;
  auto c = RunKMeans(IdenticalPoints(20, 2), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->labels.size(), 20u);
  EXPECT_NEAR(c->quality, 0.0, 1e-9);
}

TEST(RobustnessTest, KMeansKEqualsN) {
  auto ds = MakeUniformCube(6, 2, 2);
  KMeansOptions opts;
  opts.k = 6;
  opts.seed = 2;
  auto c = RunKMeans(ds->data(), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->NumClusters(), 6u);
  EXPECT_NEAR(c->quality, 0.0, 1e-9);
}

TEST(RobustnessTest, GmmOnIdenticalPoints) {
  GmmOptions opts;
  opts.k = 2;
  opts.seed = 3;
  auto model = FitGmm(IdenticalPoints(20, 2), opts);
  ASSERT_TRUE(model.ok());
  // Variance floor keeps densities finite.
  EXPECT_TRUE(std::isfinite(model->log_likelihood));
}

TEST(RobustnessTest, DbscanOnIdenticalPoints) {
  DbscanOptions opts;
  opts.eps = 0.1;
  opts.min_pts = 3;
  auto c = RunDbscan(IdenticalPoints(15, 2), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->NumClusters(), 1u);
  EXPECT_DOUBLE_EQ(NoiseFraction(c->labels), 0.0);
}

TEST(RobustnessTest, AgglomerativeOnIdenticalPoints) {
  AgglomerativeOptions opts;
  opts.k = 2;
  auto r = RunAgglomerative(IdenticalPoints(10, 2), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->flat.NumClusters(), 2u);
}

TEST(RobustnessTest, SpectralOnIdenticalPoints) {
  SpectralOptions opts;
  opts.k = 2;
  opts.gamma = 1.0;
  opts.seed = 4;
  auto c = RunSpectral(IdenticalPoints(12, 2), opts);
  // Either a valid (arbitrary) partition or a clean error is acceptable;
  // a crash or NaN labels is not.
  if (c.ok()) {
    EXPECT_EQ(c->labels.size(), 12u);
  }
}

TEST(RobustnessTest, OneDimensionalDataEverywhere) {
  auto ds = MakeBlobs({{{0.0}, 0.3, 30}, {{5.0}, 0.3, 30}}, 5);
  const auto truth = ds->GroundTruth("labels").value();

  KMeansOptions km;
  km.k = 2;
  km.seed = 5;
  EXPECT_GT(AdjustedRandIndex(RunKMeans(ds->data(), km)->labels, truth)
                .value(),
            0.95);

  DbscanOptions db;
  db.eps = 0.5;
  db.min_pts = 3;
  EXPECT_GT(AdjustedRandIndex(RunDbscan(ds->data(), db)->labels, truth)
                .value(),
            0.95);

  AgglomerativeOptions agg;
  agg.k = 2;
  EXPECT_GT(AdjustedRandIndex(RunAgglomerative(ds->data(), agg)->flat.labels,
                              truth)
                .value(),
            0.95);

  CliqueOptions clique;
  clique.xi = 6;
  clique.tau = 0.1;
  auto sc = RunClique(ds->data(), clique);
  ASSERT_TRUE(sc.ok());
  EXPECT_GE(sc->clusters.size(), 2u);
}

TEST(RobustnessTest, ConstantColumnHandledByGrid) {
  Matrix data(20, 2);
  for (size_t i = 0; i < 20; ++i) {
    data.at(i, 0) = static_cast<double>(i);
    data.at(i, 1) = 7.0;  // constant
  }
  auto grid = Grid::Build(data, 4);
  ASSERT_TRUE(grid.ok());
  // All objects fall into interval 0 of the constant dimension.
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(grid->CellOf(i, 1), 0);
  }
  EXPECT_NEAR(grid->SubspaceEntropy({1}), 0.0, 1e-12);
}

TEST(RobustnessTest, CliqueOnConstantData) {
  CliqueOptions opts;
  opts.xi = 4;
  opts.tau = 0.1;
  auto r = RunClique(IdenticalPoints(30, 3), opts);
  ASSERT_TRUE(r.ok());
  // Everything lands in a single cell per subspace; clusters exist and
  // cover all objects.
  ASSERT_GT(r->clusters.size(), 0u);
  for (const auto& c : r->clusters) {
    EXPECT_EQ(c.objects.size(), 30u);
  }
}

TEST(RobustnessTest, DecKMeansOnIdenticalPoints) {
  DecKMeansOptions opts;
  opts.ks = {2, 2};
  opts.restarts = 1;
  opts.seed = 6;
  auto r = RunDecorrelatedKMeans(IdenticalPoints(12, 2), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->solutions.size(), 2u);
  EXPECT_TRUE(std::isfinite(r->objective));
}

TEST(RobustnessTest, CoalaWithFullyConstrainedData) {
  // Every pair is cannot-linked (all same given cluster): dissimilarity
  // merges are never available, quality merges must carry the run.
  auto ds = MakeBlobs({{{0, 0}, 0.5, 20}}, 7);
  const std::vector<int> given(20, 0);
  CoalaOptions opts;
  opts.k = 2;
  opts.w = 0.5;
  CoalaStats stats;
  auto c = RunCoala(ds->data(), given, opts, &stats);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->NumClusters(), 2u);
  EXPECT_EQ(stats.dissimilarity_merges, 0u);
}

TEST(RobustnessTest, ResidualTransformSingularScatter) {
  // Data on a line: the residual scatter is singular; the regularised
  // inverse square root must still produce a finite transform.
  Matrix data(30, 2);
  for (size_t i = 0; i < 30; ++i) {
    data.at(i, 0) = static_cast<double>(i);
    data.at(i, 1) = 2.0 * static_cast<double>(i);
  }
  std::vector<int> given(30);
  for (size_t i = 0; i < 30; ++i) given[i] = i < 15 ? 0 : 1;
  auto m = ResidualTransform(data, given);
  ASSERT_TRUE(m.ok());
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_TRUE(std::isfinite(m->at(i, j)));
    }
  }
}

TEST(RobustnessTest, OrthoProjectionExhaustsQuickly) {
  // Rank-1 data: after one projection nothing remains; the iteration must
  // terminate without errors.
  Matrix data(40, 3);
  for (size_t i = 0; i < 40; ++i) {
    const double t = (i < 20 ? -5.0 : 5.0) + 0.01 * i;
    data.at(i, 0) = t;
    data.at(i, 1) = 2 * t;
    data.at(i, 2) = -t;
  }
  KMeansOptions km;
  km.k = 2;
  km.seed = 8;
  KMeansClusterer clusterer(km);
  OrthoProjectionOptions opts;
  opts.max_views = 4;
  auto r = RunOrthoProjection(data, &clusterer, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->views.size(), 2u);
}

TEST(RobustnessTest, EigenOnZeroMatrix) {
  auto r = EigenSymmetric(Matrix(4, 4));
  ASSERT_TRUE(r.ok());
  for (double v : r->values) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(RobustnessTest, SvdOnZeroMatrix) {
  auto r = ComputeSvd(Matrix(3, 2));
  ASSERT_TRUE(r.ok());
  for (double s : r->sigma) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(RobustnessTest, SvdOnRankDeficientMatrix) {
  // Rank 1: one positive singular value, rest ~0, reconstruction exact.
  Matrix m(4, 3);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      m.at(i, j) = static_cast<double>((i + 1)) * static_cast<double>(j + 1);
    }
  }
  auto r = ComputeSvd(m);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->sigma[0], 1.0);
  EXPECT_LT(r->sigma[1], 1e-9);
  Matrix us = r->u;
  for (size_t j = 0; j < r->sigma.size(); ++j) {
    for (size_t i = 0; i < us.rows(); ++i) us.at(i, j) *= r->sigma[j];
  }
  EXPECT_LT((us * r->v.Transpose()).MaxAbsDiff(m), 1e-9);
}

TEST(RobustnessTest, MetricsOnAllNoiseLabelings) {
  const std::vector<int> noise(10, -1);
  const std::vector<int> labels = {0, 0, 1, 1, 2, 2, 0, 1, 2, 0};
  // All comparison measures must handle an empty effective intersection.
  EXPECT_TRUE(RandIndex(noise, labels).ok());
  EXPECT_TRUE(AdjustedRandIndex(noise, labels).ok());
  EXPECT_TRUE(NormalizedMutualInformation(noise, labels).ok());
  EXPECT_TRUE(VariationOfInformation(noise, labels).ok());
  EXPECT_TRUE(BestMatchAccuracy(noise, labels).ok());
}

TEST(RobustnessTest, OscluOnEmptyCandidates) {
  OscluOptions opts;
  auto r = RunOsclu(SubspaceClustering(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->clusters.empty());
}

TEST(RobustnessTest, DuplicatedRowsDoNotBreakAnything) {
  // 50% exact duplicates.
  auto base = MakeBlobs({{{0, 0}, 0.5, 30}, {{8, 8}, 0.5, 30}}, 9);
  Matrix data(120, 2);
  for (size_t i = 0; i < 60; ++i) {
    data.SetRow(i, base->data().Row(i));
    data.SetRow(60 + i, base->data().Row(i));
  }
  KMeansOptions km;
  km.k = 2;
  km.seed = 9;
  auto c = RunKMeans(data, km);
  ASSERT_TRUE(c.ok());
  // Duplicates must land in the same cluster as their originals.
  for (size_t i = 0; i < 60; ++i) {
    EXPECT_EQ(c->labels[i], c->labels[60 + i]);
  }
  DbscanOptions db;
  db.eps = 1.0;
  db.min_pts = 4;
  auto d = RunDbscan(data, db);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumClusters(), 2u);
}

// ---- NaN/Inf input rejection ---------------------------------------------
// Every public Run* entry point must reject non-finite input at the boundary
// with kInvalidArgument naming the offending cell (DESIGN.md "Failure model
// & guarantees"), instead of hanging, crashing, or emitting garbage labels.

Matrix SmallClean(uint64_t seed = 11) {
  auto ds = MakeBlobs({{{0, 0, 0}, 0.5, 10}, {{5, 5, 5}, 0.5, 10}}, seed);
  return ds->data();
}

// Runs `run` on the clean data with one cell poisoned, once with NaN and
// once with +Inf, and expects a kInvalidArgument mentioning "non-finite".
template <typename Fn>
void ExpectRejectsNonFinite(Fn&& run) {
  const double bads[] = {std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::infinity()};
  for (double bad : bads) {
    Matrix data = SmallClean();
    data.at(3, 1) = bad;
    auto r = run(data);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << r.status().ToString();
    EXPECT_NE(r.status().message().find("non-finite"), std::string::npos)
        << r.status().message();
  }
}

TEST(NonFiniteInputTest, BaseClusterers) {
  ExpectRejectsNonFinite([](const Matrix& m) {
    KMeansOptions o;
    o.k = 2;
    return RunKMeans(m, o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    GmmOptions o;
    o.k = 2;
    return RunGmm(m, o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    DbscanOptions o;
    o.eps = 1.0;
    o.min_pts = 3;
    return RunDbscan(m, o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    AgglomerativeOptions o;
    o.k = 2;
    return RunAgglomerative(m, o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    SpectralOptions o;
    o.k = 2;
    return RunSpectral(m, o);
  });
}

TEST(NonFiniteInputTest, AltspaceAlgorithms) {
  ExpectRejectsNonFinite([](const Matrix& m) {
    DecKMeansOptions o;
    o.ks = {2, 2};
    o.restarts = 1;
    return RunDecorrelatedKMeans(m, o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    CoalaOptions o;
    o.k = 2;
    return RunCoala(m, std::vector<int>(m.rows(), 0), o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    MinCEntropyOptions o;
    o.k = 2;
    return RunMinCEntropy(m, {std::vector<int>(m.rows(), 0)}, o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    CamiOptions o;
    o.restarts = 1;
    return RunCami(m, o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    DisparateOptions o;
    o.restarts = 1;
    return RunDisparateClustering(m, o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    CibOptions o;
    o.restarts = 1;
    return RunCib(m, std::vector<int>(m.rows(), 0), o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    ConditionalEnsembleOptions o;
    o.ensemble_size = 3;
    return RunConditionalEnsemble(m, std::vector<int>(m.rows(), 0), o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    MetaClusteringOptions o;
    o.num_base = 4;
    o.k = 2;
    o.meta_k = 2;
    return RunMetaClustering(m, o);
  });
}

TEST(NonFiniteInputTest, OrthogonalAlgorithms) {
  KMeansOptions km;
  km.k = 2;
  km.seed = 3;
  ExpectRejectsNonFinite([&](const Matrix& m) {
    KMeansClusterer c(km);
    return RunAltTransform(m, std::vector<int>(m.rows(), 0), &c);
  });
  ExpectRejectsNonFinite([&](const Matrix& m) {
    KMeansClusterer c(km);
    return RunResidualTransform(m, std::vector<int>(m.rows(), 0), &c);
  });
  ExpectRejectsNonFinite([&](const Matrix& m) {
    KMeansClusterer c(km);
    OrthoProjectionOptions o;
    o.max_views = 2;
    return RunOrthoProjection(m, &c, o);
  });
}

TEST(NonFiniteInputTest, SubspaceAlgorithms) {
  ExpectRejectsNonFinite([](const Matrix& m) {
    CliqueOptions o;
    o.xi = 4;
    o.tau = 0.1;
    return RunClique(m, o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    SubcluOptions o;
    o.eps = 1.0;
    o.min_pts = 3;
    return RunSubclu(m, o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    SchismOptions o;
    o.xi = 4;
    return RunSchism(m, o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    DocOptions o;
    o.outer_trials = 2;
    o.inner_trials = 2;
    return RunDoc(m, o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    return RunP3c(m, P3cOptions());
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    PredeconOptions o;
    o.min_pts = 3;
    return RunPredecon(m, o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    return RunStatpc(m, SubspaceClustering(), StatpcOptions());
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    OrclusOptions o;
    o.k = 2;
    o.l = 2;
    o.restarts = 1;
    return RunOrclus(m, o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    ProclusOptions o;
    o.k = 2;
    return RunProclus(m, o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    MscOptions o;
    o.num_views = 2;
    o.k = 2;
    return RunMultipleSpectralViews(m, o);
  });
}

TEST(NonFiniteInputTest, MultiviewAlgorithms) {
  const Matrix clean = SmallClean(13);
  ExpectRejectsNonFinite([&](const Matrix& m) {
    CoEmOptions o;
    o.k = 2;
    return RunCoEm(m, clean, o);
  });
  // The second view is validated too, not just the first.
  ExpectRejectsNonFinite([&](const Matrix& m) {
    CoEmOptions o;
    o.k = 2;
    return RunCoEm(clean, m, o);
  });
  ExpectRejectsNonFinite([&](const Matrix& m) {
    MvDbscanOptions o;
    o.eps = {1.0, 1.0};
    o.min_pts = 3;
    return RunMvDbscan({clean, m}, o);
  });
  ExpectRejectsNonFinite([&](const Matrix& m) {
    MvSpectralOptions o;
    o.k = 2;
    return RunMvSpectral({m, clean}, o);
  });
  ExpectRejectsNonFinite([](const Matrix& m) {
    ConsensusOptions o;
    o.ensemble_size = 3;
    return RunEnsembleConsensus(m, o);
  });
}

TEST(NonFiniteInputTest, DiscoveryPipelineRejectsBeforeFallback) {
  // kInvalidArgument must propagate directly — the fallback chain is for
  // recoverable computation errors, not for rejected inputs.
  ExpectRejectsNonFinite([](const Matrix& m) {
    DiscoveryOptions o;
    o.k = 2;
    return DiscoverMultipleClusterings(m, o);
  });
}

}  // namespace
}  // namespace multiclust
