// Cross-validation suite: quantities that the library computes through two
// independent code paths must agree. These tests pin the numerical
// semantics of the measures against each other and against hand
// enumerations on random inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "altspace/cib.h"
#include "common/rng.h"
#include "data/generators.h"
#include "linalg/decomposition.h"
#include "linalg/pca.h"
#include "metrics/partition_similarity.h"
#include "stats/contingency.h"
#include "stats/entropy.h"
#include "stats/grid.h"
#include "subspace/rescu.h"

namespace multiclust {
namespace {

std::vector<int> RandomLabels(size_t n, size_t k, Rng* rng) {
  std::vector<int> labels(n);
  for (auto& l : labels) l = static_cast<int>(rng->NextIndex(k));
  return labels;
}

// ---------------------------------------------------------------------
// Pair counts vs. hand enumeration.
class PairCountCrosscheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PairCountCrosscheck, TableMatchesDirectEnumeration) {
  Rng rng(GetParam());
  const size_t n = 40;
  const std::vector<int> a = RandomLabels(n, 3, &rng);
  const std::vector<int> b = RandomLabels(n, 4, &rng);
  auto t = ContingencyTable::Build(a, b);
  ASSERT_TRUE(t.ok());
  const auto pc = t->pair_counts();
  double same_both = 0, same_a = 0, same_b = 0, neither = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const bool sa = a[i] == a[j];
      const bool sb = b[i] == b[j];
      same_both += sa && sb;
      same_a += sa && !sb;
      same_b += !sa && sb;
      neither += !sa && !sb;
    }
  }
  EXPECT_DOUBLE_EQ(pc.same_both, same_both);
  EXPECT_DOUBLE_EQ(pc.same_a_only, same_a);
  EXPECT_DOUBLE_EQ(pc.same_b_only, same_b);
  EXPECT_DOUBLE_EQ(pc.same_neither, neither);
  // Rand index from the pair counts equals the library's value.
  const double rand = (same_both + neither) /
                      (same_both + same_a + same_b + neither);
  EXPECT_NEAR(RandIndex(a, b).value(), rand, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairCountCrosscheck,
                         ::testing::Range<uint64_t>(1, 7));

// ---------------------------------------------------------------------
// Label MI vs. count-matrix MI: encoding a labeling as one-hot counts and
// running the CIB feature-information path must reproduce MutualInformation.
class MiCrosscheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MiCrosscheck, OneHotCountsReproduceLabelMi) {
  Rng rng(GetParam() * 13);
  const size_t n = 60;
  const std::vector<int> a = RandomLabels(n, 3, &rng);
  const std::vector<int> b = RandomLabels(n, 4, &rng);
  // counts(i, y) = 1 iff b[i] == y: then I(Y; A) over the count matrix is
  // exactly the label mutual information I(B; A).
  Matrix counts(n, 4);
  for (size_t i = 0; i < n; ++i) counts.at(i, b[i]) = 1.0;
  EXPECT_NEAR(FeatureInformation(counts, a).value(),
              MutualInformation(b, a).value(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiCrosscheck,
                         ::testing::Range<uint64_t>(1, 7));

// ---------------------------------------------------------------------
// Grid subspace entropy vs. direct cell counting.
TEST(GridCrosscheck, SubspaceEntropyMatchesManualCounts) {
  auto ds = MakeFourSquares(40, 8.0, 0.7, 3);
  auto grid = Grid::Build(ds->data(), 5);
  ASSERT_TRUE(grid.ok());
  // Manual: count (cell0, cell1) pairs.
  std::map<std::pair<int, int>, size_t> cells;
  for (size_t i = 0; i < ds->num_objects(); ++i) {
    ++cells[{grid->CellOf(i, 0), grid->CellOf(i, 1)}];
  }
  std::vector<size_t> counts;
  for (const auto& [key, c] : cells) counts.push_back(c);
  EXPECT_NEAR(grid->SubspaceEntropy({0, 1}), EntropyFromCounts(counts),
              1e-12);
  EXPECT_EQ(grid->NonEmptyCells({0, 1}), cells.size());
}

// ---------------------------------------------------------------------
// PCA vs. SVD: principal axes of centred data equal the right singular
// vectors; eigenvalues equal sigma^2 / (n - 1).
TEST(PcaSvdCrosscheck, EigenvaluesMatchSingularValues) {
  Rng rng(7);
  const size_t n = 50, d = 4;
  Matrix data(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      data.at(i, j) = rng.Gaussian(0, 1.0 + static_cast<double>(j));
    }
  }
  auto pca = FitPca(data);
  ASSERT_TRUE(pca.ok());
  // Centre and decompose.
  Matrix centred = data;
  const std::vector<double> mean = RowMean(data);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) centred.at(i, j) -= mean[j];
  }
  auto svd = ComputeSvd(centred);
  ASSERT_TRUE(svd.ok());
  for (size_t j = 0; j < d; ++j) {
    EXPECT_NEAR(pca->eigenvalues[j],
                svd->sigma[j] * svd->sigma[j] / static_cast<double>(n - 1),
                1e-8);
    // Axes agree up to sign.
    double dot = 0;
    for (size_t i = 0; i < d; ++i) {
      dot += pca->components.at(i, j) * svd->v.at(i, j);
    }
    EXPECT_NEAR(std::fabs(dot), 1.0, 1e-6);
  }
}

// ---------------------------------------------------------------------
// NMI normalisations: consistent ordering min >= sqrt >= sum... actually
// I/min >= I/sqrt >= I/max and I/sqrt >= I/sum (AM-GM).
class NmiOrderCrosscheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NmiOrderCrosscheck, NormalisationsOrdered) {
  Rng rng(GetParam() * 29);
  const size_t n = 50;
  const std::vector<int> a = RandomLabels(n, 3, &rng);
  const std::vector<int> b = RandomLabels(n, 5, &rng);
  const double nmi_min =
      NormalizedMutualInformation(a, b, NmiNorm::kMin).value();
  const double nmi_sqrt =
      NormalizedMutualInformation(a, b, NmiNorm::kSqrt).value();
  const double nmi_sum =
      NormalizedMutualInformation(a, b, NmiNorm::kSum).value();
  const double nmi_max =
      NormalizedMutualInformation(a, b, NmiNorm::kMax).value();
  const double nmi_joint =
      NormalizedMutualInformation(a, b, NmiNorm::kJoint).value();
  EXPECT_GE(nmi_min, nmi_sqrt - 1e-12);
  EXPECT_GE(nmi_sqrt, nmi_sum - 1e-12);   // GM >= HM-style ordering
  EXPECT_GE(nmi_sum, nmi_max - 1e-12);    // AM >= max^-1 ordering
  EXPECT_GE(nmi_max, nmi_joint - 1e-12);  // H(a,b) >= max(Ha, Hb)
}

INSTANTIATE_TEST_SUITE_P(Seeds, NmiOrderCrosscheck,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------
// RESCU coverage is monotone in the redundancy allowance.
class RescuMonotoneCrosscheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RescuMonotoneCrosscheck, LooserRedundancyCoversMore) {
  Rng rng(GetParam() * 31);
  // Random overlapping candidate clusters.
  SubspaceClustering cands;
  for (int c = 0; c < 12; ++c) {
    SubspaceCluster sc;
    sc.dims = {rng.NextIndex(3)};
    const std::vector<size_t> objs = rng.SampleWithoutReplacement(
        60, 8 + rng.NextIndex(20));
    for (size_t o : objs) sc.objects.push_back(static_cast<int>(o));
    std::sort(sc.objects.begin(), sc.objects.end());
    sc.source = "synthetic";
    cands.clusters.push_back(std::move(sc));
  }
  size_t prev_selected = 0;
  for (double redundancy : {0.0, 0.3, 0.6, 0.9}) {
    RescuOptions opts;
    opts.max_redundancy = redundancy;
    opts.min_new_objects = 1;
    auto r = RunRescu(cands, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r->clusters.size(), prev_selected);
    prev_selected = r->clusters.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RescuMonotoneCrosscheck,
                         ::testing::Range<uint64_t>(1, 6));

// ---------------------------------------------------------------------
// VI equals 2*H(a,b) - H(a) - H(b) (identity via the chain rule).
class ViIdentityCrosscheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ViIdentityCrosscheck, ViFromJointEntropy) {
  Rng rng(GetParam() * 37);
  const size_t n = 45;
  const std::vector<int> a = RandomLabels(n, 4, &rng);
  const std::vector<int> b = RandomLabels(n, 3, &rng);
  const double vi = VariationOfInformation(a, b).value();
  const double hj = JointEntropy(a, b).value();
  EXPECT_NEAR(vi, 2 * hj - LabelEntropy(a) - LabelEntropy(b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViIdentityCrosscheck,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace multiclust
