// Tests for the second extension wave: ADCO density-profile comparison,
// conditional ensembles, multi-view spectral clustering, RIS subspace
// ranking, and the grid spatial index.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "altspace/conditional_ensemble.h"
#include "cluster/dbscan.h"
#include "cluster/grid_index.h"
#include "common/rng.h"
#include "data/generators.h"
#include "metrics/adco.h"
#include "metrics/partition_similarity.h"
#include "multiview/mv_spectral.h"
#include "subspace/ris.h"

namespace multiclust {
namespace {

// ---------------------------------------------------------------------
// ADCO.
TEST(AdcoTest, ProfilesNormalisedPerAttribute) {
  auto ds = MakeFourSquares(30, 8.0, 0.6, 1);
  const auto labels = ds->GroundTruth("corners").value();
  auto profiles = ClusterDensityProfiles(ds->data(), labels, 4);
  ASSERT_TRUE(profiles.ok());
  ASSERT_EQ(profiles->rows(), 4u);
  ASSERT_EQ(profiles->cols(), 2u * 4u);
  for (size_t c = 0; c < 4; ++c) {
    for (size_t attr = 0; attr < 2; ++attr) {
      double sum = 0;
      for (size_t b = 0; b < 4; ++b) {
        sum += profiles->at(c, attr * 4 + b);
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(AdcoTest, IdenticalClusteringsScoreOne) {
  auto ds = MakeFourSquares(30, 8.0, 0.6, 2);
  const auto labels = ds->GroundTruth("horizontal").value();
  EXPECT_NEAR(AdcoSimilarity(ds->data(), labels, labels).value(), 1.0,
              1e-9);
  EXPECT_NEAR(AdcoDissimilarity(ds->data(), labels, labels).value(), 0.0,
              1e-9);
}

TEST(AdcoTest, OrthogonalSplitsAreDissimilar) {
  auto ds = MakeFourSquares(40, 10.0, 0.6, 3);
  const auto h = ds->GroundTruth("horizontal").value();
  const auto v = ds->GroundTruth("vertical").value();
  const double cross = AdcoSimilarity(ds->data(), h, v).value();
  EXPECT_LT(cross, 0.8);
  EXPECT_GT(AdcoDissimilarity(ds->data(), h, v).value(), 0.2);
}

TEST(AdcoTest, SpatialSensitivityBeyondLabels) {
  // Two labelings that are *identical as partitions* must have ADCO 1
  // regardless of label names — and a labeling with the same sizes but
  // spatially shuffled members must score lower.
  auto ds = MakeFourSquares(40, 10.0, 0.6, 4);
  const auto h = ds->GroundTruth("horizontal").value();
  std::vector<int> renamed(h.size());
  for (size_t i = 0; i < h.size(); ++i) renamed[i] = 1 - h[i];
  EXPECT_NEAR(AdcoSimilarity(ds->data(), h, renamed).value(), 1.0, 1e-9);

  Rng rng(4);
  std::vector<int> shuffled(h.size());
  for (size_t i = 0; i < h.size(); ++i) {
    shuffled[i] = static_cast<int>(rng.NextIndex(2));
  }
  EXPECT_LT(AdcoSimilarity(ds->data(), h, shuffled).value(),
            AdcoSimilarity(ds->data(), h, renamed).value());
}

TEST(AdcoTest, SymmetricWithEqualK) {
  auto ds = MakeFourSquares(30, 8.0, 0.6, 5);
  const auto h = ds->GroundTruth("horizontal").value();
  const auto v = ds->GroundTruth("vertical").value();
  EXPECT_NEAR(AdcoSimilarity(ds->data(), h, v).value(),
              AdcoSimilarity(ds->data(), v, h).value(), 1e-9);
}

TEST(AdcoTest, InvalidInputs) {
  EXPECT_FALSE(AdcoSimilarity(Matrix(3, 2), {0, 1}, {0, 1, 1}).ok());
  EXPECT_FALSE(
      ClusterDensityProfiles(Matrix(2, 2), {0, 1}, 0).ok());
}

// ---------------------------------------------------------------------
// Conditional ensembles.
TEST(ConditionalEnsembleTest, AvoidsGivenFindsAlternative) {
  auto ds = MakeFourSquares(40, 10.0, 0.8, 6);
  const auto h = ds->GroundTruth("horizontal").value();
  const auto v = ds->GroundTruth("vertical").value();
  ConditionalEnsembleOptions opts;
  opts.k = 2;
  opts.ensemble_size = 30;
  opts.seed = 6;
  auto r = RunConditionalEnsemble(ds->data(), h, opts);
  ASSERT_TRUE(r.ok());
  const double to_given =
      NormalizedMutualInformation(r->clustering.labels, h).value();
  const double to_alt =
      NormalizedMutualInformation(r->clustering.labels, v).value();
  EXPECT_GT(to_alt, to_given);
  EXPECT_GT(to_alt, 0.6);
}

TEST(ConditionalEnsembleTest, WeightsAntiCorrelateWithRedundancy) {
  auto ds = MakeFourSquares(30, 10.0, 0.8, 7);
  const auto h = ds->GroundTruth("horizontal").value();
  ConditionalEnsembleOptions opts;
  opts.k = 2;
  opts.ensemble_size = 20;
  opts.seed = 7;
  auto r = RunConditionalEnsemble(ds->data(), h, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->member_redundancy.size(), 20u);
  for (size_t e = 0; e < 20; ++e) {
    for (size_t f = 0; f < 20; ++f) {
      if (r->member_redundancy[e] < r->member_redundancy[f] - 1e-9) {
        EXPECT_GT(r->member_weight[e], r->member_weight[f] - 1e-12);
      }
    }
  }
}

TEST(ConditionalEnsembleTest, InvalidInputs) {
  ConditionalEnsembleOptions opts;
  EXPECT_FALSE(RunConditionalEnsemble(Matrix(), {}, opts).ok());
  EXPECT_FALSE(
      RunConditionalEnsemble(Matrix(4, 2), {0, 0, 1}, opts).ok());
  opts.ensemble_size = 0;
  EXPECT_FALSE(
      RunConditionalEnsemble(Matrix(4, 2), {0, 0, 1, 1}, opts).ok());
}

// ---------------------------------------------------------------------
// Multi-view spectral.
TEST(MvSpectralTest, FusedViewsRecoverSharedStructure) {
  // Rings in view 1, blobs in view 2, same assignment: either view alone
  // suffices, the fusion must too.
  Rng rng(8);
  const size_t n = 150;
  Matrix rings(n, 2), blobs(n, 2);
  std::vector<int> truth(n);
  for (size_t i = 0; i < n; ++i) {
    const bool outer = rng.NextDouble() < 0.5;
    truth[i] = outer ? 1 : 0;
    const double r = (outer ? 6.0 : 2.0) + rng.Gaussian(0, 0.15);
    const double theta = rng.Uniform(0, 2 * M_PI);
    rings.at(i, 0) = r * std::cos(theta);
    rings.at(i, 1) = r * std::sin(theta);
    blobs.at(i, 0) = rng.Gaussian(outer ? 4.0 : -4.0, 0.8);
    blobs.at(i, 1) = rng.Gaussian(0, 0.8);
  }
  for (const auto fusion : {AffinityFusion::kAverage,
                            AffinityFusion::kProduct}) {
    MvSpectralOptions opts;
    opts.k = 2;
    opts.gamma = 1.0;
    opts.fusion = fusion;
    opts.seed = 8;
    auto c = RunMvSpectral({rings, blobs}, opts);
    ASSERT_TRUE(c.ok());
    EXPECT_GT(AdjustedRandIndex(c->labels, truth).value(), 0.9)
        << "fusion mode "
        << (fusion == AffinityFusion::kAverage ? "average" : "product");
  }
}

TEST(MvSpectralTest, SingleViewMatchesSpectral) {
  auto ds = MakeTwoRings(100, 1.5, 6.0, 0.08, 9);
  MvSpectralOptions opts;
  opts.k = 2;
  opts.gamma = 2.0;
  opts.seed = 9;
  auto c = RunMvSpectral({ds->data()}, opts);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(AdjustedRandIndex(c->labels, ds->GroundTruth("rings").value())
                .value(),
            0.9);
}

TEST(MvSpectralTest, InvalidInputs) {
  MvSpectralOptions opts;
  EXPECT_FALSE(RunMvSpectral({}, opts).ok());
  EXPECT_FALSE(RunMvSpectral({Matrix(3, 1), Matrix(4, 1)}, opts).ok());
  opts.k = 0;
  EXPECT_FALSE(RunMvSpectral({Matrix(3, 1)}, opts).ok());
}

// ---------------------------------------------------------------------
// RIS.
TEST(RisTest, RanksStructuredSubspacesFirst) {
  std::vector<ViewSpec> views(1);
  views[0] = {2, 3, 10.0, 0.5, ""};
  auto ds = MakeMultiView(200, views, 2, 10);
  RisOptions opts;
  opts.eps = 1.0;
  opts.min_pts = 5;
  opts.max_dims = 2;
  auto r = RunRis(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  ASSERT_GT(r->size(), 0u);
  // The top-ranked 2-D subspace should be the planted {0, 1}.
  for (const RankedSubspace& rs : *r) {
    if (rs.dims.size() == 2) {
      EXPECT_EQ(rs.dims, (std::vector<size_t>{0, 1}));
      break;
    }
  }
}

TEST(RisTest, MonotonicityCoreFractionShrinks) {
  std::vector<ViewSpec> views(1);
  views[0] = {3, 2, 10.0, 0.5, ""};
  auto ds = MakeMultiView(150, views, 0, 11);
  RisOptions opts;
  opts.eps = 1.2;
  opts.min_pts = 5;
  opts.max_dims = 3;
  auto r = RunRis(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  // For nested subspaces, core fraction can only shrink with more dims.
  for (const RankedSubspace& a : *r) {
    for (const RankedSubspace& b : *r) {
      if (a.dims.size() >= b.dims.size()) continue;
      if (std::includes(b.dims.begin(), b.dims.end(), a.dims.begin(),
                        a.dims.end())) {
        EXPECT_GE(a.core_fraction, b.core_fraction - 1e-12);
      }
    }
  }
}

TEST(RisTest, InvalidInputs) {
  RisOptions opts;
  opts.eps = 0;
  EXPECT_FALSE(RunRis(Matrix(5, 2), opts).ok());
  opts.eps = 1;
  EXPECT_FALSE(RunRis(Matrix(), opts).ok());
}

// ---------------------------------------------------------------------
// Grid index.
TEST(GridIndexTest, MatchesBruteForceNeighborhoods) {
  auto ds = MakeBlobs({{{0, 0}, 1.0, 100}, {{6, 6}, 1.0, 100}}, 12);
  const double eps = 0.9;
  auto indexed = EpsNeighborhoodsIndexed(ds->data(), eps);
  ASSERT_TRUE(indexed.ok());
  auto brute = EpsNeighborhoods(ds->data(), eps, {});
  ASSERT_EQ(indexed->size(), brute.size());
  for (size_t i = 0; i < brute.size(); ++i) {
    std::vector<int> a = (*indexed)[i];
    std::vector<int> b = brute[i];
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "object " << i;
  }
}

TEST(GridIndexTest, DbscanIdenticalWithAndWithoutIndex) {
  auto ds = MakeTwoRings(200, 2.0, 6.0, 0.1, 13);
  DbscanOptions with_index;
  with_index.eps = 1.2;
  with_index.min_pts = 4;
  with_index.use_index = true;
  DbscanOptions without = with_index;
  without.use_index = false;
  auto a = RunDbscan(ds->data(), with_index);
  auto b = RunDbscan(ds->data(), without);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(AdjustedRandIndex(a->labels, b->labels).value(), 1.0, 1e-12);
  EXPECT_EQ(a->NumClusters(), b->NumClusters());
}

TEST(GridIndexTest, QueryIncludesSelf) {
  const Matrix data = Matrix::FromRows({{0, 0}, {10, 10}});
  auto index = GridIndex::Build(data, 1.0);
  ASSERT_TRUE(index.ok());
  const auto nb = index->RangeQuery(0, 1.0);
  ASSERT_EQ(nb.size(), 1u);
  EXPECT_EQ(nb[0], 0);
}

TEST(GridIndexTest, InvalidBuilds) {
  EXPECT_FALSE(GridIndex::Build(Matrix(), 1.0).ok());
  EXPECT_FALSE(GridIndex::Build(Matrix(3, 2), 0.0).ok());
}

class GridIndexProperty : public ::testing::TestWithParam<double> {};

TEST_P(GridIndexProperty, ExactForAnyEps) {
  auto ds = MakeUniformCube(150, 3, 14);
  const double eps = GetParam();
  auto indexed = EpsNeighborhoodsIndexed(ds->data(), eps);
  ASSERT_TRUE(indexed.ok());
  const auto brute = EpsNeighborhoods(ds->data(), eps, {});
  for (size_t i = 0; i < brute.size(); ++i) {
    std::vector<int> a = (*indexed)[i];
    std::vector<int> b = brute[i];
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, GridIndexProperty,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5));

}  // namespace
}  // namespace multiclust
