// Tests for the parallel-execution subsystem: pool lifecycle, thread-count
// resolution, grain edge cases, exception propagation, and the deterministic
// chunked-reduction guarantee (bit-identical floating-point results for any
// thread count).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"

namespace multiclust {
namespace {

// Every test restores the default (env/hardware) thread count on exit so
// the configuration does not leak into other suites.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { SetThreadCount(0); }
};

TEST_F(ParallelTest, ThreadCountDefaultsPositive) {
  EXPECT_GE(ThreadCount(), 1u);
  EXPECT_GE(HardwareConcurrency(), 1u);
}

TEST_F(ParallelTest, SetThreadCountRoundTrip) {
  SetThreadCount(3);
  EXPECT_EQ(ThreadCount(), 3u);
  SetThreadCount(1);
  EXPECT_EQ(ThreadCount(), 1u);
  SetThreadCount(0);
  EXPECT_GE(ThreadCount(), 1u);
}

TEST_F(ParallelTest, ParallelForCoversRangeExactlyOnce) {
  for (const size_t threads : {1u, 2u, 4u}) {
    SetThreadCount(threads);
    for (const size_t grain : {0u, 1u, 3u, 7u, 1000u}) {
      std::vector<int> hits(101, 0);
      ParallelFor(0, hits.size(), grain, [&](size_t lo, size_t hi) {
        ASSERT_LE(lo, hi);
        for (size_t i = lo; i < hi; ++i) ++hits[i];
      });
      for (size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i], 1) << "threads=" << threads << " grain=" << grain
                              << " i=" << i;
      }
    }
  }
}

TEST_F(ParallelTest, ParallelForEmptyAndReversedRange) {
  SetThreadCount(4);
  bool called = false;
  ParallelFor(5, 5, 1, [&](size_t, size_t) { called = true; });
  ParallelFor(7, 3, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_F(ParallelTest, ParallelForPropagatesExceptions) {
  for (const size_t threads : {1u, 4u}) {
    SetThreadCount(threads);
    EXPECT_THROW(
        ParallelFor(0, 64, 1,
                    [](size_t lo, size_t hi) {
                      if (lo <= 32 && 32 < hi) {
                        throw std::runtime_error("chunk failure");
                      }
                    }),
        std::runtime_error);
    // The pool must stay usable after a failed job.
    std::vector<int> hits(16, 0);
    ParallelFor(0, hits.size(), 1, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) ++hits[i];
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 16);
  }
}

TEST_F(ParallelTest, ParallelReduceSumsIntegers) {
  const size_t n = 1000;
  for (const size_t threads : {1u, 2u, 4u}) {
    SetThreadCount(threads);
    const long sum = ParallelReduce(
        0, n, 17, 0L,
        [](size_t lo, size_t hi) {
          long s = 0;
          for (size_t i = lo; i < hi; ++i) s += static_cast<long>(i);
          return s;
        },
        [](long a, long b) { return a + b; });
    EXPECT_EQ(sum, static_cast<long>(n * (n - 1) / 2));
  }
}

TEST_F(ParallelTest, ParallelReduceBitIdenticalAcrossThreadCounts) {
  // Values spanning many magnitudes make the sum order-sensitive, so this
  // actually exercises the fixed-chunk-boundary guarantee.
  Rng rng(42);
  std::vector<double> values(10000);
  for (double& v : values) {
    v = rng.Gaussian(0, 1) * std::pow(10.0, rng.Uniform(-8, 8));
  }
  const auto sum_with = [&](size_t threads) {
    SetThreadCount(threads);
    return ParallelReduce(
        0, values.size(), 64, 0.0,
        [&](size_t lo, size_t hi) {
          double s = 0.0;
          for (size_t i = lo; i < hi; ++i) s += values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = sum_with(1);
  EXPECT_EQ(serial, sum_with(2));
  EXPECT_EQ(serial, sum_with(4));
  EXPECT_EQ(serial, sum_with(8));
}

TEST_F(ParallelTest, ParallelReduceOrderedConcatenation) {
  // Chunk partials must be combined in ascending chunk order.
  SetThreadCount(4);
  const std::vector<size_t> seen = ParallelReduce(
      0, 100, 9, std::vector<size_t>{},
      [](size_t lo, size_t hi) {
        std::vector<size_t> local;
        for (size_t i = lo; i < hi; ++i) local.push_back(i);
        return local;
      },
      [](std::vector<size_t> a, std::vector<size_t> b) {
        a.insert(a.end(), b.begin(), b.end());
        return a;
      });
  ASSERT_EQ(seen.size(), 100u);
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST_F(ParallelTest, NestedParallelForRunsInline) {
  SetThreadCount(4);
  std::vector<int> hits(64, 0);
  ParallelFor(0, 8, 1, [&](size_t lo, size_t hi) {
    for (size_t outer = lo; outer < hi; ++outer) {
      ParallelFor(0, 8, 1, [&](size_t ilo, size_t ihi) {
        for (size_t inner = ilo; inner < ihi; ++inner) {
          ++hits[outer * 8 + inner];
        }
      });
    }
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST_F(ParallelTest, PoolSurvivesRepeatedResizing) {
  for (int round = 0; round < 10; ++round) {
    SetThreadCount(static_cast<size_t>(round % 5));
    std::vector<int> hits(32, 0);
    ParallelFor(0, hits.size(), 4, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) ++hits[i];
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 32);
  }
}

TEST_F(ParallelTest, ManySmallJobs) {
  SetThreadCount(4);
  long total = 0;
  for (int round = 0; round < 500; ++round) {
    total += ParallelReduce(
        0, 32, 4, 0L,
        [](size_t lo, size_t hi) { return static_cast<long>(hi - lo); },
        [](long a, long b) { return a + b; });
  }
  EXPECT_EQ(total, 500L * 32L);
}

}  // namespace
}  // namespace multiclust
