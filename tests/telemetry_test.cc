// Telemetry-plane suite: live progress events (schema + streaming),
// per-run resource accounting, the span sampler, and the v2 report schema
// carrying ResourceProfile sections. Tests that need the capture machinery
// skip themselves when it is compiled out (-DMULTICLUST_TRACING=OFF); the
// report round-trip tests always run — the serialized schema is
// build-independent.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "common/json.h"
#include "common/profile.h"
#include "common/report.h"
#include "common/runguard.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "support/json_reader.h"

namespace multiclust {
namespace {

Matrix TestData(uint64_t seed) {
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 12.0, 0.8, ""};
  views[1] = {2, 2, 8.0, 0.8, ""};
  return MakeMultiView(120, views, 1, seed)->data();
}

// Collects every dispatched event in memory.
struct CollectingSink : telemetry::ProgressSink {
  void OnEvent(const telemetry::ProgressEvent& event) override {
    events.push_back(event);
  }
  std::vector<telemetry::ProgressEvent> events;
};

// RAII: sink installed for the test body, uninstalled before destruction.
struct SinkSession {
  explicit SinkSession(telemetry::ProgressSink* sink) {
    telemetry::SetProgressSink(sink);
  }
  ~SinkSession() { telemetry::SetProgressSink(nullptr); }
};

TEST(ProgressEventTest, JsonOmitsInapplicableFields) {
  if (!telemetry::kTelemetryCompiledIn) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telemetry::ProgressEvent event;
  event.stage = "kmeans";
  event.phase = "start";
  const std::string json = telemetry::ProgressEventJson(event, 1, 2.5);
  EXPECT_TRUE(test::IsValidJson(json)) << json;
  auto parsed = json::Parse(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetString("kind", ""), "multiclust.progress");
  EXPECT_EQ(parsed->GetNumber("schema_version", -1),
            telemetry::kProgressSchemaVersion);
  EXPECT_EQ(parsed->GetNumber("seq", -1), 1.0);
  EXPECT_EQ(parsed->GetNumber("elapsed_ms", -1), 2.5);
  EXPECT_EQ(parsed->GetString("stage", ""), "kmeans");
  EXPECT_EQ(parsed->GetString("phase", ""), "start");
  // Defaults mean "not applicable" and must be absent, not null/NaN.
  EXPECT_EQ(parsed->Find("restart"), nullptr);
  EXPECT_EQ(parsed->Find("iteration"), nullptr);
  EXPECT_EQ(parsed->Find("objective"), nullptr);
  EXPECT_EQ(parsed->Find("delta"), nullptr);
  EXPECT_EQ(parsed->Find("budget_remaining_ms"), nullptr);
  EXPECT_EQ(parsed->Find("eta_ms"), nullptr);
  EXPECT_EQ(parsed->Find("terminal"), nullptr);
}

TEST(ProgressEventTest, JsonCarriesAllFields) {
  if (!telemetry::kTelemetryCompiledIn) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telemetry::ProgressEvent event;
  event.stage = "gmm";
  event.phase = "iteration";
  event.restart = 2;
  event.iteration = 17;
  event.objective = -123.5;
  event.delta = 0.25;
  event.budget_remaining_ms = 900.0;
  event.eta_ms = 40.0;
  event.terminal = true;
  const std::string json = telemetry::ProgressEventJson(event, 9, 100.0);
  auto parsed = json::Parse(json);
  ASSERT_TRUE(parsed.ok()) << json;
  EXPECT_EQ(parsed->GetNumber("restart", -1), 2.0);
  EXPECT_EQ(parsed->GetNumber("iteration", -1), 17.0);
  EXPECT_EQ(parsed->GetNumber("objective", 0), -123.5);
  EXPECT_EQ(parsed->GetNumber("delta", 0), 0.25);
  EXPECT_EQ(parsed->GetNumber("budget_remaining_ms", 0), 900.0);
  EXPECT_EQ(parsed->GetNumber("eta_ms", 0), 40.0);
  EXPECT_TRUE(parsed->GetBool("terminal", false));
}

TEST(ProgressStreamTest, RecorderStreamsIterationEvents) {
  if (!telemetry::kTelemetryCompiledIn) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  CollectingSink sink;
  SinkSession session(&sink);
  ASSERT_TRUE(telemetry::ProgressEnabled());

  const Matrix data = TestData(11);
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 2;
  opts.seed = 7;
  RunDiagnostics diag;
  opts.diagnostics = &diag;
  ASSERT_TRUE(RunKMeans(data, opts).ok());
  telemetry::EmitStage("run", "complete", /*terminal=*/true);

  ASSERT_FALSE(sink.events.empty());
  size_t iteration_events = 0;
  bool saw_eta = false;
  for (const telemetry::ProgressEvent& e : sink.events) {
    EXPECT_FALSE(e.stage.empty());
    if (e.phase == "iteration") {
      ++iteration_events;
      EXPECT_GE(e.iteration, 0);
      EXPECT_GE(e.restart, 0);
      if (!std::isnan(e.eta_ms)) saw_eta = true;
    }
  }
  // One event per recorded outer iteration, then the recorder's "end" and
  // the explicit terminal event.
  EXPECT_GT(iteration_events, 0u);
  EXPECT_TRUE(saw_eta) << "ETA should appear once cadence is established";
  EXPECT_TRUE(sink.events.back().terminal);
  EXPECT_EQ(sink.events.back().phase, "complete");

  // Uninstalled sink receives nothing.
  telemetry::SetProgressSink(nullptr);
  const size_t before = sink.events.size();
  telemetry::EmitStage("run", "start");
  EXPECT_EQ(sink.events.size(), before);
}

TEST(ProgressStreamTest, NdjsonSinkWritesValidStream) {
  if (!telemetry::kTelemetryCompiledIn) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  const std::string path = ::testing::TempDir() + "telemetry_progress.ndjson";
  {
    telemetry::NdjsonProgressSink sink(std::fopen(path.c_str(), "w"),
                                       /*take_ownership=*/true);
    SinkSession session(&sink);
    telemetry::EmitStage("pipeline", "start");
    telemetry::ProgressEvent event;
    event.stage = "kmeans";
    event.phase = "iteration";
    event.iteration = 0;
    event.objective = 10.0;
    telemetry::EmitProgress(event);
    telemetry::EmitStage("run", "complete", /*terminal=*/true);
    EXPECT_EQ(sink.events_written(), 3u);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  std::remove(path.c_str());

  // Three lines, each a self-contained JSON object, seq strictly
  // increasing, last one terminal.
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < content.size()) {
    const size_t eol = content.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "stream must end with a newline";
    lines.push_back(content.substr(pos, eol - pos));
    pos = eol + 1;
  }
  ASSERT_EQ(lines.size(), 3u) << content;
  double last_seq = 0.0;
  for (const std::string& line : lines) {
    auto parsed = json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_EQ(parsed->GetString("kind", ""), "multiclust.progress");
    const double seq = parsed->GetNumber("seq", -1);
    EXPECT_GT(seq, last_seq);
    last_seq = seq;
  }
  auto last = json::Parse(lines.back());
  ASSERT_TRUE(last.ok());
  EXPECT_TRUE(last->GetBool("terminal", false));
}

TEST(ResourceProfileTest, ScopeCapturesMonotonicCounters) {
  if (!telemetry::kProfileCompiledIn) {
    GTEST_SKIP() << "profiling compiled out";
  }
  telemetry::ResourceScope scope;
  Matrix a(64, 64);
  const telemetry::ResourceProfile first = scope.Snapshot();
  EXPECT_TRUE(first.captured);
  EXPECT_GE(first.alloc_count, 1u);
  EXPECT_GE(first.alloc_bytes, 64u * 64u * sizeof(double));

  // More work strictly grows the tallies; clocks never run backwards.
  Matrix b(128, 128);
  volatile double sink = 0.0;
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(5);
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
  }
  const telemetry::ResourceProfile second = scope.Snapshot();
  EXPECT_GT(second.wall_ms, first.wall_ms);
  EXPECT_GE(second.user_cpu_ms, first.user_cpu_ms);
  EXPECT_GE(second.system_cpu_ms, first.system_cpu_ms);
  EXPECT_GE(second.minor_faults, first.minor_faults);
  EXPECT_GE(second.major_faults, first.major_faults);
  EXPECT_GT(second.alloc_count, first.alloc_count);
  EXPECT_GE(second.alloc_bytes,
            first.alloc_bytes + 128u * 128u * sizeof(double));
  EXPECT_GE(second.flops, first.flops);
  EXPECT_GE(second.kernel_bytes, first.kernel_bytes);
  EXPECT_GT(second.peak_rss_kb, 0u);

  // A nested scope sees only its own window.
  telemetry::ResourceScope inner;
  const telemetry::ResourceProfile inner_view = inner.Snapshot();
  EXPECT_LT(inner_view.alloc_count, second.alloc_count);

  const std::string text = second.ToString();
  EXPECT_NE(text.find("wall"), std::string::npos) << text;
}

TEST(ResourceProfileTest, RunDiagnosticsCarryResource) {
  if (!telemetry::kProfileCompiledIn) {
    GTEST_SKIP() << "profiling compiled out";
  }
  const Matrix data = TestData(13);
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 2;
  opts.seed = 7;
  RunDiagnostics diag;
  opts.diagnostics = &diag;
  ASSERT_TRUE(RunKMeans(data, opts).ok());
  EXPECT_TRUE(diag.resource.captured);
  EXPECT_GT(diag.resource.wall_ms, 0.0);
  EXPECT_GT(diag.resource.alloc_count, 0u);
  EXPECT_GT(diag.resource.flops, 0u) << "kernel hooks should have fired";
}

TEST(SamplerTest, AttributesSamplesToOpenSpans) {
  if (!telemetry::kProfileCompiledIn || !trace::kCompiledIn) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  trace::Reset();
  trace::Enable();
  telemetry::ResetSamples();
  telemetry::SamplerOptions sopts;
  sopts.interval_ms = 1.0;
  ASSERT_TRUE(telemetry::StartSampler(sopts).ok());
  EXPECT_TRUE(telemetry::SamplerRunning());
  // Starting twice is an error, not a second thread.
  EXPECT_FALSE(telemetry::StartSampler(sopts).ok());

  {
    MULTICLUST_TRACE_SPAN("telemetry.hot_outer");
    MULTICLUST_TRACE_SPAN("telemetry.hot_inner");
    // Synthetic hot loop: long enough for dozens of 1 ms ticks even on a
    // loaded single-core host.
    volatile double sink = 0.0;
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(150);
    while (std::chrono::steady_clock::now() < until) {
      for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
    }
  }
  telemetry::StopSampler();
  EXPECT_FALSE(telemetry::SamplerRunning());

  const size_t total = telemetry::SampleCount();
  ASSERT_GT(total, 10u);
  size_t named_self = 0;
  size_t hot_inner_self = 0;
  size_t hot_outer_total = 0;
  for (const telemetry::SampleStats& s : telemetry::SamplerTable()) {
    if (s.name != "(no span)") named_self += s.self;
    if (s.name == "telemetry.hot_inner") hot_inner_self = s.self;
    if (s.name == "telemetry.hot_outer") hot_outer_total = s.total;
  }
  // The whole sampled window ran inside the synthetic spans: >= 80% of all
  // samples must attribute to a named span, innermost = hot_inner.
  EXPECT_GE(named_self * 5, total * 4)
      << telemetry::SamplerTableString();
  EXPECT_GT(hot_inner_self, 0u);
  // The outer span encloses the inner, so its total covers at least as
  // many samples.
  EXPECT_GE(hot_outer_total, hot_inner_self);

  // Collapsed stacks preserve nesting order for flamegraph.pl.
  const std::string collapsed = telemetry::CollapsedStacks();
  EXPECT_NE(collapsed.find("telemetry.hot_outer;telemetry.hot_inner "),
            std::string::npos)
      << collapsed;

  telemetry::ResetSamples();
  EXPECT_EQ(telemetry::SampleCount(), 0u);
  trace::Disable();
  trace::Reset();
}

// --- Report schema v2 ------------------------------------------------------

DiscoveryReport SmallReport(bool with_resource) {
  DiscoveryReport report;
  report.strategy_name = "dec-kmeans";
  report.chosen_k = 2;
  report.degraded = true;
  report.warnings = {"kmeans: reseeded empty cluster"};

  Clustering c;
  c.labels = {0, 0, 1, 1};
  c.algorithm = "kmeans";
  c.quality = 12.5;
  c.iterations = 4;
  c.converged = true;
  EXPECT_TRUE(report.solutions.Add(c).ok());
  c.labels = {0, 1, 0, 1};
  c.quality = 9.75;
  EXPECT_TRUE(report.solutions.Add(c).ok());

  report.objective.qualities = {0.5, 0.25};
  report.objective.mean_quality = 0.375;
  report.objective.mean_dissimilarity = 0.8;
  report.objective.min_dissimilarity = 0.8;
  report.objective.combined = 1.175;

  RunDiagnostics attempt;
  attempt.algorithm = "dec-kmeans";
  attempt.iterations = 4;
  attempt.converged = true;
  attempt.elapsed_ms = 1.5;
  attempt.warnings = {"dec-kmeans: note"};
  if (with_resource) {
    attempt.resource.captured = true;
    attempt.resource.wall_ms = 1.5;
    attempt.resource.alloc_count = 3;
    attempt.resource.alloc_bytes = 4096;
  }
  report.attempts.push_back(attempt);

  if (with_resource) {
    report.resource.captured = true;
    report.resource.wall_ms = 2.25;
    report.resource.user_cpu_ms = 2.0;
    report.resource.system_cpu_ms = 0.25;
    report.resource.peak_rss_kb = 10240;
    report.resource.minor_faults = 100;
    report.resource.major_faults = 1;
    report.resource.alloc_count = 5;
    report.resource.alloc_bytes = 8192;
    report.resource.flops = 123456;
    report.resource.kernel_bytes = 654321;
  }
  return report;
}

TEST(ReportV2Test, ResourceSurvivesRoundTrip) {
  const DiscoveryReport original = SmallReport(/*with_resource=*/true);
  const std::string json = DiscoveryReportJson(original, {});
  EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(json.find("\"resource\""), std::string::npos);

  auto restored = ReadDiscoveryReportJson(json);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->strategy_name, original.strategy_name);
  EXPECT_EQ(restored->chosen_k, original.chosen_k);
  EXPECT_EQ(restored->degraded, original.degraded);
  EXPECT_EQ(restored->warnings, original.warnings);
  ASSERT_EQ(restored->solutions.size(), 2u);
  EXPECT_EQ(restored->solutions.at(0).labels, original.solutions.at(0).labels);
  EXPECT_EQ(restored->solutions.at(1).labels, original.solutions.at(1).labels);
  EXPECT_DOUBLE_EQ(restored->objective.combined, original.objective.combined);
  ASSERT_EQ(restored->attempts.size(), 1u);
  EXPECT_TRUE(restored->attempts[0].resource.captured);
  EXPECT_DOUBLE_EQ(restored->attempts[0].resource.wall_ms, 1.5);
  EXPECT_EQ(restored->attempts[0].resource.alloc_bytes, 4096u);

  EXPECT_TRUE(restored->resource.captured);
  EXPECT_DOUBLE_EQ(restored->resource.wall_ms, 2.25);
  EXPECT_EQ(restored->resource.peak_rss_kb, 10240u);
  EXPECT_EQ(restored->resource.flops, 123456u);
  EXPECT_EQ(restored->resource.kernel_bytes, 654321u);
}

TEST(ReportV2Test, UncapturedResourceStaysAbsent) {
  const DiscoveryReport original = SmallReport(/*with_resource=*/false);
  const std::string json = DiscoveryReportJson(original, {});
  EXPECT_EQ(json.find("\"resource\""), std::string::npos)
      << "uncaptured profiles must not serialize";
  auto restored = ReadDiscoveryReportJson(json);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_FALSE(restored->resource.captured);
  ASSERT_EQ(restored->attempts.size(), 1u);
  EXPECT_FALSE(restored->attempts[0].resource.captured);
}

TEST(ReportV2Test, ReadsV1Documents) {
  // A minimal hand-written v1 document (the PR-4 schema: no "resource"
  // members anywhere). Must keep parsing forever.
  const std::string v1 =
      "{\"schema_version\":1,\"kind\":\"multiclust.discovery_report\","
      "\"report\":{\"strategy\":\"dec-kmeans\",\"chosen_k\":2,"
      "\"degraded\":false,\"warnings\":[],"
      "\"solutions\":[{\"algorithm\":\"kmeans\",\"quality\":1.5,"
      "\"iterations\":3,\"converged\":true,\"labels\":[0,0,1,1]}],"
      "\"objective\":{\"qualities\":[0.5],\"mean_quality\":0.5,"
      "\"mean_dissimilarity\":0.0,\"min_dissimilarity\":0.0,"
      "\"combined\":0.5},"
      "\"attempts\":[{\"algorithm\":\"dec-kmeans\",\"iterations\":3,"
      "\"converged\":true,\"stop_reason\":\"converged\",\"retries\":0,"
      "\"elapsed_ms\":1.0,\"note\":\"\",\"warnings\":[]}]}}";
  auto restored = ReadDiscoveryReportJson(v1);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->strategy_name, "dec-kmeans");
  EXPECT_EQ(restored->chosen_k, 2u);
  ASSERT_EQ(restored->solutions.size(), 1u);
  EXPECT_EQ(restored->solutions.at(0).labels, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_FALSE(restored->resource.captured);
  ASSERT_EQ(restored->attempts.size(), 1u);
  EXPECT_FALSE(restored->attempts[0].resource.captured);
}

TEST(ReportV2Test, RejectsUnknownSchemaAndKind) {
  EXPECT_FALSE(ReadDiscoveryReportJson("not json").ok());
  EXPECT_FALSE(ReadDiscoveryReportJson("{\"schema_version\":99,"
                                       "\"kind\":\"multiclust.discovery_"
                                       "report\",\"report\":{}}")
                   .ok());
  EXPECT_FALSE(
      ReadDiscoveryReportJson(
          "{\"schema_version\":2,\"kind\":\"wrong\",\"report\":{}}")
          .ok());
}

TEST(ReportV2Test, PipelineReportCarriesResourceWhenCompiledIn) {
  const Matrix data = TestData(17);
  DiscoveryOptions options;
  options.k = 2;
  options.num_solutions = 2;
  options.seed = 3;
  auto report = DiscoverMultipleClusterings(data, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->resource.captured, telemetry::kProfileCompiledIn);
  if (telemetry::kProfileCompiledIn) {
    EXPECT_GT(report->resource.wall_ms, 0.0);
    EXPECT_GT(report->resource.alloc_count, 0u);
    for (const RunDiagnostics& attempt : report->attempts) {
      EXPECT_TRUE(attempt.resource.captured);
    }
  }
}

}  // namespace
}  // namespace multiclust
