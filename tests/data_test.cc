#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "data/csv.h"
#include "data/dataset.h"
#include "data/generators.h"

namespace multiclust {
namespace {

TEST(DatasetTest, ConstructionAndNames) {
  Dataset ds(Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}}));
  EXPECT_EQ(ds.num_objects(), 3u);
  EXPECT_EQ(ds.num_dims(), 2u);
  EXPECT_EQ(ds.column_names()[0], "c0");
  EXPECT_EQ(ds.column_names()[1], "c1");
}

TEST(DatasetTest, NamedColumns) {
  Dataset ds(Matrix::FromRows({{1, 2}}), {"x", "y"});
  EXPECT_EQ(ds.ColumnIndex("y").value(), 1u);
  EXPECT_FALSE(ds.ColumnIndex("z").ok());
}

TEST(DatasetTest, GroundTruthRoundTrip) {
  Dataset ds(Matrix::FromRows({{1}, {2}, {3}}));
  ASSERT_TRUE(ds.AddGroundTruth("t", {0, 1, 0}).ok());
  EXPECT_EQ(ds.GroundTruth("t").value(), (std::vector<int>{0, 1, 0}));
  EXPECT_FALSE(ds.GroundTruth("missing").ok());
  EXPECT_EQ(ds.GroundTruthNames(), (std::vector<std::string>{"t"}));
}

TEST(DatasetTest, GroundTruthSizeMismatchRejected) {
  Dataset ds(Matrix::FromRows({{1}, {2}}));
  EXPECT_FALSE(ds.AddGroundTruth("bad", {0}).ok());
}

TEST(DatasetTest, SubspaceDistance) {
  Dataset ds(Matrix::FromRows({{0, 0, 5}, {3, 4, 5}}));
  EXPECT_DOUBLE_EQ(ds.SquaredDistance(0, 1), 25.0);
  EXPECT_DOUBLE_EQ(ds.SubspaceSquaredDistance(0, 1, {0}), 9.0);
  EXPECT_DOUBLE_EQ(ds.SubspaceSquaredDistance(0, 1, {2}), 0.0);
  EXPECT_DOUBLE_EQ(ds.SubspaceSquaredDistance(0, 1, {0, 1}), 25.0);
}

TEST(GeneratorsTest, BlobsShapeAndLabels) {
  auto ds = MakeBlobs({{{0, 0}, 1.0, 50}, {{10, 10}, 1.0, 30}}, 1);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_objects(), 80u);
  EXPECT_EQ(ds->num_dims(), 2u);
  const auto labels = ds->GroundTruth("labels").value();
  int count1 = 0;
  for (int l : labels) count1 += (l == 1);
  EXPECT_EQ(count1, 30);
}

TEST(GeneratorsTest, BlobsAreSeparated) {
  auto ds = MakeBlobs({{{0, 0}, 0.5, 40}, {{20, 0}, 0.5, 40}}, 2);
  ASSERT_TRUE(ds.ok());
  const auto labels = ds->GroundTruth("labels").value();
  for (size_t i = 0; i < ds->num_objects(); ++i) {
    const double x = ds->data().at(i, 0);
    EXPECT_EQ(labels[i], x > 10 ? 1 : 0) << "object " << i;
  }
}

TEST(GeneratorsTest, BlobsRejectInconsistentDims) {
  EXPECT_FALSE(MakeBlobs({{{0, 0}, 1.0, 5}, {{1}, 1.0, 5}}, 1).ok());
  EXPECT_FALSE(MakeBlobs({}, 1).ok());
}

TEST(GeneratorsTest, FourSquaresTruths) {
  auto ds = MakeFourSquares(25, 10.0, 0.5, 3);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_objects(), 100u);
  const auto corners = ds->GroundTruth("corners").value();
  const auto horizontal = ds->GroundTruth("horizontal").value();
  const auto vertical = ds->GroundTruth("vertical").value();
  for (size_t i = 0; i < 100; ++i) {
    // horizontal groups by y sign, vertical by x sign.
    EXPECT_EQ(horizontal[i], ds->data().at(i, 1) > 0 ? 1 : 0);
    EXPECT_EQ(vertical[i], ds->data().at(i, 0) > 0 ? 1 : 0);
    // corner is consistent with both splits.
    EXPECT_EQ(corners[i] >= 2, horizontal[i] == 1);
    EXPECT_EQ(corners[i] % 2 == 1, vertical[i] == 1);
  }
}

TEST(GeneratorsTest, MultiViewLayout) {
  std::vector<ViewSpec> views(2);
  views[0] = {2, 3, 8.0, 0.7, ""};
  views[1] = {3, 2, 8.0, 0.7, "second"};
  auto ds = MakeMultiView(120, views, 2, 4);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_objects(), 120u);
  EXPECT_EQ(ds->num_dims(), 7u);  // 2 + 3 + 2 noise
  EXPECT_TRUE(ds->GroundTruth("view0").ok());
  EXPECT_TRUE(ds->GroundTruth("second").ok());
  EXPECT_EQ(ViewDimensions(views, 0), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(ViewDimensions(views, 1), (std::vector<size_t>{2, 3, 4}));
}

TEST(GeneratorsTest, MultiViewAssignmentsAreIndependent) {
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 8.0, 0.7, ""};
  views[1] = {2, 2, 8.0, 0.7, ""};
  auto ds = MakeMultiView(400, views, 0, 5);
  ASSERT_TRUE(ds.ok());
  const auto a = ds->GroundTruth("view0").value();
  const auto b = ds->GroundTruth("view1").value();
  // Count the 2x2 contingency; all four combinations should appear often.
  int table[2][2] = {{0, 0}, {0, 0}};
  for (size_t i = 0; i < 400; ++i) ++table[a[i]][b[i]];
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) EXPECT_GT(table[i][j], 40);
  }
}

TEST(GeneratorsTest, MultiViewRejectsBadSpecs) {
  EXPECT_FALSE(MakeMultiView(10, {}, 0, 1).ok());
  std::vector<ViewSpec> bad(1);
  bad[0] = {0, 2, 8.0, 1.0, ""};
  EXPECT_FALSE(MakeMultiView(10, bad, 0, 1).ok());
}

TEST(GeneratorsTest, UniformCubeInRange) {
  auto ds = MakeUniformCube(200, 5, 6);
  ASSERT_TRUE(ds.ok());
  for (size_t i = 0; i < ds->num_objects(); ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_GE(ds->data().at(i, j), 0.0);
      EXPECT_LT(ds->data().at(i, j), 1.0);
    }
  }
}

TEST(GeneratorsTest, TwoRingsRadii) {
  auto ds = MakeTwoRings(100, 1.0, 5.0, 0.05, 7);
  ASSERT_TRUE(ds.ok());
  const auto labels = ds->GroundTruth("rings").value();
  for (size_t i = 0; i < ds->num_objects(); ++i) {
    const double r = std::sqrt(ds->data().at(i, 0) * ds->data().at(i, 0) +
                               ds->data().at(i, 1) * ds->data().at(i, 1));
    if (labels[i] == 0) {
      EXPECT_LT(r, 3.0);
    } else {
      EXPECT_GT(r, 3.0);
    }
  }
}

TEST(GeneratorsTest, TwoRingsRejectsBadRadii) {
  EXPECT_FALSE(MakeTwoRings(10, 2.0, 1.0, 0.1, 1).ok());
}

TEST(GeneratorsTest, CustomerScenarioSchema) {
  auto ds = MakeCustomerScenario(50, 8);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_dims(), 6u);
  EXPECT_TRUE(ds->ColumnIndex("income").ok());
  EXPECT_TRUE(ds->ColumnIndex("musicality").ok());
  EXPECT_TRUE(ds->GroundTruth("professional").ok());
  EXPECT_TRUE(ds->GroundTruth("leisure").ok());
}

TEST(GeneratorsTest, GeneExpressionGroupsOverlap) {
  auto ds = MakeGeneExpression(100, 12, 3, 4.0, 1.0, 9);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_ground_truths(), 3u);
  // Some gene should belong to at least two groups (multiple roles).
  const auto g0 = ds->GroundTruth("group0").value();
  const auto g1 = ds->GroundTruth("group1").value();
  const auto g2 = ds->GroundTruth("group2").value();
  bool overlap = false;
  for (size_t i = 0; i < 100; ++i) {
    if (g0[i] + g1[i] + g2[i] >= 2) overlap = true;
  }
  EXPECT_TRUE(overlap);
}

TEST(GeneratorsTest, SensorScenarioSchema) {
  auto ds = MakeSensorScenario(80, 0.2, 10);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_dims(), 4u);
  EXPECT_TRUE(ds->GroundTruth("temperature").ok());
  EXPECT_TRUE(ds->GroundTruth("humidity").ok());
}

TEST(GeneratorsTest, WithNoiseDimsPreservesTruths) {
  auto base = MakeFourSquares(10, 8.0, 0.5, 11);
  ASSERT_TRUE(base.ok());
  auto noisy = WithNoiseDims(*base, 3, 12);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->num_dims(), 5u);
  EXPECT_EQ(noisy->GroundTruth("corners").value(),
            base->GroundTruth("corners").value());
  EXPECT_EQ(noisy->column_names()[4], "noise2");
}

TEST(GeneratorsTest, DeterministicForSameSeed) {
  auto a = MakeFourSquares(20, 6.0, 0.5, 99);
  auto b = MakeFourSquares(20, 6.0, 0.5, 99);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->data().MaxAbsDiff(b->data()), 0.0);
}

TEST(CsvTest, WriteReadRoundTrip) {
  auto ds = MakeFourSquares(10, 6.0, 0.5, 13);
  ASSERT_TRUE(ds.ok());
  const std::string path = ::testing::TempDir() + "/multiclust_csv_test.csv";
  ASSERT_TRUE(WriteCsv(*ds, path).ok());

  CsvOptions opts;
  opts.label_column = "gt:corners";
  auto back = ReadCsv(path, opts);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_objects(), ds->num_objects());
  // The labels column was lifted out; the two other gt columns remain as
  // numeric data.
  EXPECT_EQ(back->num_dims(), 2u + 3u);
  EXPECT_EQ(back->GroundTruth("gt:corners").value(),
            ds->GroundTruth("corners").value());
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileError) {
  CsvOptions opts;
  auto r = ReadCsv("/nonexistent/nope.csv", opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, MalformedNumberError) {
  const std::string path = ::testing::TempDir() + "/multiclust_bad.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("a,b\n1,2\n3,oops\n", f);
  fclose(f);
  CsvOptions opts;
  auto r = ReadCsv(path, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("oops"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvTest, MalformedNumberErrorNamesRowAndColumn) {
  const std::string path = ::testing::TempDir() + "/multiclust_badctx.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("height,width\n1,2\n3,oops\n", f);
  fclose(f);
  CsvOptions opts;
  auto r = ReadCsv(path, opts);
  ASSERT_FALSE(r.ok());
  // The bad cell is on file line 3 (after the header), second column.
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("column 2"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("'width'"), std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(CsvTest, NonFiniteCellRejectedByDefault) {
  const std::string path = ::testing::TempDir() + "/multiclust_nan.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("a,b\n1,2\n3,nan\n", f);
  fclose(f);
  CsvOptions opts;
  auto r = ReadCsv(path, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("non-finite"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(CsvTest, NonFiniteCellAcceptedWhenOptedIn) {
  const std::string path = ::testing::TempDir() + "/multiclust_nan_ok.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("a,b\n1,2\n3,inf\n", f);
  fclose(f);
  CsvOptions opts;
  opts.allow_non_finite = true;
  auto r = ReadCsv(path, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_objects(), 2u);
  EXPECT_TRUE(std::isinf(r->data().at(1, 1)));
  std::remove(path.c_str());
}

TEST(CsvTest, FieldCountMismatchError) {
  const std::string path = ::testing::TempDir() + "/multiclust_badcount.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("a,b\n1,2\n3\n", f);
  fclose(f);
  CsvOptions opts;
  EXPECT_FALSE(ReadCsv(path, opts).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, LabelColumnNotFound) {
  const std::string path = ::testing::TempDir() + "/multiclust_nolabel.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("a,b\n1,2\n", f);
  fclose(f);
  CsvOptions opts;
  opts.label_column = "missing";
  auto r = ReadCsv(path, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace multiclust
