#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace multiclust {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kComputationError),
               "ComputationError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveExtractsValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Result<int> Doubler(Result<int> in) {
  MC_ASSIGN_OR_RETURN(int x, in);
  return 2 * x;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  EXPECT_FALSE(Doubler(Status::Internal("x")).ok());
  EXPECT_EQ(Doubler(Status::Internal("x")).status().code(),
            StatusCode::kInternal);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(-3.0, 5.0);
  EXPECT_NEAR(sum / n, 1.0, 0.1);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NextIndexInRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextIndex(7), 7u);
  }
}

TEST(RngTest, NextIndexCoversAllValues) {
  Rng rng(19);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextIndex(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(23);
  const std::vector<size_t> perm = rng.Permutation(50);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(perm.size(), 50u);
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 30u);
  EXPECT_EQ(seen.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleClampedToPopulation) {
  Rng rng(31);
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 50).size(), 5u);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(37);
  std::vector<double> weights = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1u);
  }
}

TEST(RngTest, CategoricalProportions) {
  Rng rng(41);
  std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Categorical(weights) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(RngTest, CategoricalIgnoresNegativeWeights) {
  Rng rng(43);
  std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Categorical(weights), 1u);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.Split();
  // Child stream should not replay the parent stream.
  Rng parent2(47);
  parent2.NextU64();  // same state advance as Split does
  EXPECT_NE(child.NextU64(), parent.NextU64());
}

TEST(StringsTest, SplitBasic) {
  const auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, SplitNoSeparator) {
  const auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimString("  x \t\r\n"), "x");
  EXPECT_EQ(TrimString(""), "");
  EXPECT_EQ(TrimString("   "), "");
}

TEST(StringsTest, JoinRoundTrip) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringsTest, ParseDoubleValid) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble(" -1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
}

TEST(StringsTest, ParseDoubleRejectsJunk) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("12x", &v));
  EXPECT_FALSE(ParseDouble("x", &v));
}

}  // namespace
}  // namespace multiclust
