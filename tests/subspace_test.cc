#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/generators.h"
#include "metrics/partition_similarity.h"
#include "subspace/asclu.h"
#include "subspace/clique.h"
#include "subspace/enclus.h"
#include "subspace/osclu.h"
#include "subspace/proclus.h"
#include "subspace/rescu.h"
#include "subspace/schism.h"
#include "subspace/statpc.h"
#include "subspace/subclu.h"
#include "subspace/subspace_cluster.h"

namespace multiclust {
namespace {

// Multi-view subspace data: view 0 in dims {0,1}, view 1 in dims {2,3},
// plus noise dims.
struct SubspaceData {
  Matrix data;
  std::vector<int> view0;
  std::vector<int> view1;
};

SubspaceData MakeSubspaceData(uint64_t seed, size_t n = 200,
                              size_t noise_dims = 1) {
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 10.0, 0.6, ""};
  views[1] = {2, 3, 10.0, 0.6, ""};
  auto ds = MakeMultiView(n, views, noise_dims, seed);
  SubspaceData s;
  s.data = ds->data();
  s.view0 = ds->GroundTruth("view0").value();
  s.view1 = ds->GroundTruth("view1").value();
  return s;
}

TEST(SubspaceClusterTest, Overlaps) {
  SubspaceCluster a{{0, 1}, {1, 2, 3}, "x"};
  SubspaceCluster b{{1, 2}, {3, 4}, "x"};
  EXPECT_EQ(a.ObjectOverlap(b), 1u);
  EXPECT_EQ(a.DimOverlap(b), 1u);
  EXPECT_EQ(a.dimensionality(), 2u);
  EXPECT_EQ(a.support(), 3u);
}

TEST(SubspaceClusteringTest, GroupAndLabel) {
  SubspaceClustering sc;
  sc.clusters.push_back({{0, 1}, {0, 1}, "x"});
  sc.clusters.push_back({{0, 1}, {2, 3}, "x"});
  sc.clusters.push_back({{2}, {0, 2}, "x"});
  EXPECT_EQ(sc.NumSubspaces(), 2u);
  const auto groups = sc.GroupBySubspace();
  ASSERT_EQ(groups.size(), 2u);
  // Group of subspace {0,1} has clusters 0 and 1.
  const auto labels = sc.LabelsForGroup(groups[0], 5);
  EXPECT_EQ(labels, (std::vector<int>{0, 0, 1, 1, -1}));
}

TEST(UnitsToClustersTest, MergesAdjacentUnits) {
  // Two adjacent 1-D units and one distant one.
  GridUnit u1;
  u1.constraints = {{0, 2}};
  u1.objects = {0, 1};
  GridUnit u2;
  u2.constraints = {{0, 3}};
  u2.objects = {2};
  GridUnit u3;
  u3.constraints = {{0, 7}};
  u3.objects = {5};
  const auto clusters = UnitsToClusters({u1, u2, u3}, "t");
  ASSERT_EQ(clusters.size(), 2u);
  // The merged cluster contains objects 0,1,2.
  bool found_merged = false;
  for (const auto& c : clusters) {
    if (c.objects.size() == 3) {
      found_merged = true;
      EXPECT_EQ(c.objects, (std::vector<int>{0, 1, 2}));
    }
  }
  EXPECT_TRUE(found_merged);
}

TEST(CliqueTest, FindsPlantedSubspaceClusters) {
  const SubspaceData s = MakeSubspaceData(1);
  CliqueOptions opts;
  opts.xi = 8;
  opts.tau = 0.05;
  opts.max_dims = 2;
  auto r = RunClique(s.data, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->clusters.size(), 0u);
  // Pair F1 against each planted view should be decent: the planted
  // 2-D clusters appear among the mined clusters.
  EXPECT_GT(SubspacePairF1(*r, s.view0).value(), 0.3);
  EXPECT_GT(SubspacePairF1(*r, s.view1).value(), 0.3);
}

TEST(CliqueTest, EveryObjectInMultipleClusters) {
  const SubspaceData s = MakeSubspaceData(2);
  CliqueOptions opts;
  opts.xi = 6;
  opts.tau = 0.05;
  opts.max_dims = 2;
  auto r = RunClique(s.data, opts);
  ASSERT_TRUE(r.ok());
  // Count cluster memberships of object 0: must exceed 1 (multiple views).
  size_t memberships = 0;
  for (const auto& c : r->clusters) {
    if (std::binary_search(c.objects.begin(), c.objects.end(), 0)) {
      ++memberships;
    }
  }
  EXPECT_GT(memberships, 1u);
}

TEST(CliqueTest, MonotonicityEveryProjectionDense) {
  const SubspaceData s = MakeSubspaceData(3, 150);
  CliqueOptions opts;
  opts.xi = 6;
  opts.tau = 0.05;
  auto r = RunClique(s.data, opts);
  ASSERT_TRUE(r.ok());
  const size_t min_support = static_cast<size_t>(
      std::ceil(opts.tau * static_cast<double>(s.data.rows())));
  for (const auto& c : r->clusters) {
    EXPECT_GE(c.objects.size(), min_support);
  }
}

TEST(CliqueTest, InvalidTau) {
  CliqueOptions opts;
  opts.tau = 0.0;
  EXPECT_FALSE(RunClique(Matrix(5, 2), opts).ok());
  opts.tau = 1.5;
  EXPECT_FALSE(RunClique(Matrix(5, 2), opts).ok());
}

TEST(SchismTest, ThresholdsDecreaseWithDimensionality) {
  const auto thresholds = SchismSupportThresholds(1000, 6, 10, 0.05);
  for (size_t s = 2; s <= 6; ++s) {
    EXPECT_LE(thresholds[s], thresholds[s - 1]);
  }
}

TEST(SchismTest, FindsPlantedClusters) {
  const SubspaceData s = MakeSubspaceData(4);
  SchismOptions opts;
  opts.xi = 8;
  opts.tau = 0.05;
  opts.max_dims = 2;
  auto r = RunSchism(s.data, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->clusters.size(), 0u);
  EXPECT_GT(SubspacePairF1(*r, s.view0).value(), 0.3);
}

TEST(SchismTest, AdaptiveThresholdKeepsHighDimUnits) {
  // With a fixed CLIQUE threshold calibrated for 1-D density, the planted
  // 2-D clusters can be lost; SCHISM's decreasing threshold keeps them.
  const SubspaceData s = MakeSubspaceData(5, 300);
  CliqueOptions clique;
  clique.xi = 10;
  clique.tau = 0.2;  // deliberately too strict for 2-D cells
  clique.max_dims = 2;
  SchismOptions schism;
  schism.xi = 10;
  schism.tau = 0.01;
  schism.max_dims = 2;
  auto rc = RunClique(s.data, clique);
  auto rs = RunSchism(s.data, schism);
  ASSERT_TRUE(rc.ok() && rs.ok());
  auto count_2d = [](const SubspaceClustering& sc) {
    size_t n = 0;
    for (const auto& c : sc.clusters) n += (c.dims.size() == 2);
    return n;
  };
  EXPECT_GT(count_2d(*rs), count_2d(*rc));
}

TEST(SubcluTest, FindsDensityClustersWithNoise) {
  const SubspaceData s = MakeSubspaceData(6, 150, 0);
  SubcluOptions opts;
  opts.eps = 1.2;
  opts.min_pts = 5;
  opts.max_dims = 2;
  auto r = RunSubclu(s.data, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->clusters.size(), 0u);
  EXPECT_GT(SubspacePairF1(*r, s.view0).value(), 0.3);
  // Some cluster should live in the 2-D planted subspaces.
  bool has_2d = false;
  for (const auto& c : r->clusters) has_2d |= (c.dims.size() == 2);
  EXPECT_TRUE(has_2d);
}

TEST(SubcluTest, AprioriPrunesHigherDimsOnUniformData) {
  // Uniform data: 1-D projections are dense (points pack tightly on a
  // line) but genuine 2-D density does not exist — the apriori recursion
  // must not promote any higher-dimensional cluster.
  auto ds = MakeUniformCube(150, 3, 7);
  SubcluOptions opts;
  opts.eps = 0.02;
  opts.min_pts = 5;
  auto r = RunSubclu(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  for (const auto& c : r->clusters) {
    EXPECT_EQ(c.dims.size(), 1u);
  }
}

TEST(SubcluTest, TinyEpsFindsNothingAnywhere) {
  auto ds = MakeUniformCube(100, 3, 7);
  SubcluOptions opts;
  opts.eps = 1e-4;
  opts.min_pts = 5;
  auto r = RunSubclu(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->clusters.size(), 0u);
}

TEST(SubcluTest, InvalidOptions) {
  SubcluOptions opts;
  opts.eps = 0;
  EXPECT_FALSE(RunSubclu(Matrix(5, 2), opts).ok());
}

TEST(ProclusTest, PartitionsAndSelectsDims) {
  const SubspaceData s = MakeSubspaceData(8, 200, 2);
  ProclusOptions opts;
  opts.k = 4;
  opts.avg_dims = 2;
  opts.seed = 8;
  auto r = RunProclus(s.data, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->dims.size(), 4u);
  for (const auto& dims : r->dims) {
    EXPECT_GE(dims.size(), 2u);
  }
  // Disjoint partitioning: labels in [-1, k).
  for (int l : r->clustering.labels) {
    EXPECT_GE(l, -1);
    EXPECT_LT(l, 4);
  }
  const auto as_subspace = r->AsSubspaceClustering();
  EXPECT_EQ(as_subspace.clusters.size(), 4u);
}

TEST(ProclusTest, InvalidOptions) {
  ProclusOptions opts;
  opts.k = 0;
  EXPECT_FALSE(RunProclus(Matrix(10, 4), opts).ok());
  opts.k = 2;
  opts.avg_dims = 1;
  EXPECT_FALSE(RunProclus(Matrix(10, 4), opts).ok());
}

TEST(EnclusTest, RelevantSubspacesRankAboveNoise) {
  const SubspaceData s = MakeSubspaceData(9, 250, 2);
  EnclusOptions opts;
  opts.xi = 6;
  opts.omega = 20.0;  // permissive: rank everything
  opts.max_dims = 2;
  auto r = RunEnclus(s.data, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_GT(r->size(), 0u);
  // Find rank of planted subspace {0,1} vs noise pair {5,6} (noise dims are
  // the last two).
  const size_t d = s.data.cols();
  int planted_rank = -1, noise_rank = -1;
  for (size_t i = 0; i < r->size(); ++i) {
    if ((*r)[i].dims == std::vector<size_t>{0, 1}) {
      planted_rank = static_cast<int>(i);
    }
    if ((*r)[i].dims == std::vector<size_t>{d - 2, d - 1}) {
      noise_rank = static_cast<int>(i);
    }
  }
  ASSERT_GE(planted_rank, 0);
  if (noise_rank >= 0) {
    EXPECT_LT(planted_rank, noise_rank);
  }
}

TEST(EnclusTest, InterestMeasuresCorrelation) {
  const SubspaceData s = MakeSubspaceData(10, 250, 2);
  EnclusOptions opts;
  opts.xi = 6;
  opts.omega = 20.0;
  opts.max_dims = 2;
  auto r = RunEnclus(s.data, opts);
  ASSERT_TRUE(r.ok());
  double planted_interest = -1, noise_interest = -1;
  const size_t d = s.data.cols();
  for (const auto& sub : *r) {
    if (sub.dims == std::vector<size_t>{0, 1}) planted_interest = sub.interest;
    if (sub.dims == std::vector<size_t>{d - 2, d - 1}) {
      noise_interest = sub.interest;
    }
  }
  ASSERT_GE(planted_interest, 0);
  if (noise_interest >= 0) {
    EXPECT_GT(planted_interest, noise_interest);
  }
}

TEST(EnclusTest, OmegaPrunes) {
  const SubspaceData s = MakeSubspaceData(11, 150);
  EnclusOptions loose;
  loose.omega = 20.0;
  loose.max_dims = 2;
  EnclusOptions strict = loose;
  strict.omega = 1.0;
  auto r_loose = RunEnclus(s.data, loose);
  auto r_strict = RunEnclus(s.data, strict);
  ASSERT_TRUE(r_loose.ok() && r_strict.ok());
  EXPECT_LE(r_strict->size(), r_loose->size());
}

TEST(CoversSubspaceTest, TutorialSlide82Examples) {
  // {1,2} does NOT cover {3,4} nor {2,3,4} (different concepts).
  EXPECT_FALSE(CoversSubspace({1, 2}, {3, 4}, 0.5));
  EXPECT_FALSE(CoversSubspace({1, 2}, {2, 3, 4}, 0.5));
  // {1,2,3,4} covers {1,2,3} (similar concepts).
  EXPECT_TRUE(CoversSubspace({1, 2, 3, 4}, {1, 2, 3}, 0.5));
  // {1..10} covers {1..9, 11}.
  std::vector<size_t> s, t;
  for (size_t i = 1; i <= 10; ++i) s.push_back(i);
  for (size_t i = 1; i <= 9; ++i) t.push_back(i);
  t.push_back(11);
  EXPECT_TRUE(CoversSubspace(s, t, 0.5));
}

TEST(OscluTest, SelectsOrthogonalConcepts) {
  // Candidates: two clusters in subspace {0,1} covering disjoint objects,
  // one redundant duplicate, and one in an orthogonal subspace {2,3}.
  SubspaceClustering cands;
  cands.clusters.push_back({{0, 1}, {0, 1, 2, 3}, "c"});
  cands.clusters.push_back({{0, 1}, {4, 5, 6, 7}, "c"});
  cands.clusters.push_back({{0, 1}, {0, 1, 2}, "c"});  // redundant
  cands.clusters.push_back({{2, 3}, {0, 1, 4, 5}, "c"});
  OscluOptions opts;
  opts.beta = 0.5;
  opts.alpha = 0.5;
  auto r = RunOsclu(cands, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->clusters.size(), 3u);
  // The redundant {0,1,2} cluster must be excluded.
  for (const auto& c : r->clusters) {
    EXPECT_NE(c.objects, (std::vector<int>{0, 1, 2}));
  }
}

TEST(OscluTest, GlobalInterestComputation) {
  SubspaceCluster c{{0, 1}, {0, 1, 2, 3}, "c"};
  std::vector<SubspaceCluster> selected = {{{0, 1}, {0, 1}, "c"}};
  // 2 of 4 objects fresh.
  EXPECT_NEAR(GlobalInterest(c, selected, 0.5), 0.5, 1e-12);
  // A cluster in an orthogonal subspace imposes no coverage.
  std::vector<SubspaceCluster> orthogonal = {{{2, 3}, {0, 1}, "c"}};
  EXPECT_NEAR(GlobalInterest(c, orthogonal, 0.6), 1.0, 1e-12);
}

TEST(OscluTest, RecoveredViewsFromClique) {
  const SubspaceData s = MakeSubspaceData(12, 250, 1);
  CliqueOptions clique;
  clique.xi = 8;
  clique.tau = 0.04;
  clique.max_dims = 2;
  auto all = RunClique(s.data, clique);
  ASSERT_TRUE(all.ok());
  OscluOptions opts;
  opts.beta = 0.5;
  opts.alpha = 0.4;
  auto selected = RunOsclu(*all, opts);
  ASSERT_TRUE(selected.ok());
  // Massive reduction with preserved coverage of both views.
  EXPECT_LT(selected->clusters.size(), all->clusters.size() / 2);
  EXPECT_GT(SubspacePairF1(*selected, s.view0).value(), 0.25);
  EXPECT_GT(SubspacePairF1(*selected, s.view1).value(), 0.25);
}

TEST(OscluTest, InvalidParameters) {
  SubspaceClustering cands;
  OscluOptions opts;
  opts.beta = 0.0;
  EXPECT_FALSE(RunOsclu(cands, opts).ok());
  opts.beta = 0.5;
  opts.alpha = 1.5;
  EXPECT_FALSE(RunOsclu(cands, opts).ok());
}

TEST(AscluTest, ValidAlternativePredicate) {
  SubspaceClustering known;
  known.clusters.push_back({{0, 1}, {0, 1, 2, 3}, "k"});
  // Same concept, same objects: invalid alternative.
  SubspaceCluster same{{0, 1}, {0, 1, 2, 3}, "c"};
  EXPECT_FALSE(IsValidAlternative(same, known, 0.5, 0.5));
  // Same concept, new objects: valid.
  SubspaceCluster fresh{{0, 1}, {4, 5, 6, 7}, "c"};
  EXPECT_TRUE(IsValidAlternative(fresh, known, 0.5, 0.5));
  // Different concept (orthogonal subspace), same objects: valid.
  SubspaceCluster ortho{{2, 3}, {0, 1, 2, 3}, "c"};
  EXPECT_TRUE(IsValidAlternative(ortho, known, 0.5, 0.5));
}

TEST(AscluTest, RecoversAlternativeViewGivenFirst) {
  const SubspaceData s = MakeSubspaceData(13, 250, 1);
  CliqueOptions clique;
  clique.xi = 8;
  clique.tau = 0.04;
  clique.max_dims = 2;
  auto all = RunClique(s.data, clique);
  ASSERT_TRUE(all.ok());
  // Known: the clusters of view 0's subspace {0,1}.
  SubspaceClustering known;
  for (const auto& c : all->clusters) {
    if (c.dims == std::vector<size_t>{0, 1}) known.clusters.push_back(c);
  }
  ASSERT_GT(known.clusters.size(), 0u);
  AscluOptions opts;
  opts.osclu.beta = 0.5;
  opts.osclu.alpha = 0.4;
  opts.alpha_known = 0.5;
  auto alt = RunAsclu(*all, known, opts);
  ASSERT_TRUE(alt.ok());
  ASSERT_GT(alt->clusters.size(), 0u);
  // Every selected cluster is a valid alternative to the known clusters.
  for (const auto& c : alt->clusters) {
    EXPECT_TRUE(IsValidAlternative(c, known, opts.osclu.beta,
                                   opts.alpha_known));
  }
  // The alternative's support mass lives in view 1's dimensions {2, 3},
  // not in the known view's {0, 1}.
  size_t mass_v1 = 0, mass_v0 = 0;
  for (const auto& c : alt->clusters) {
    bool in_v1 = false, in_v0 = false;
    for (size_t d : c.dims) {
      in_v1 |= (d == 2 || d == 3);
      in_v0 |= (d == 0 || d == 1);
    }
    if (in_v1) mass_v1 += c.support();
    if (in_v0) mass_v0 += c.support();
  }
  EXPECT_GT(mass_v1, mass_v0);
}

TEST(RescuTest, RemovesRedundancyKeepsCoverage) {
  const SubspaceData s = MakeSubspaceData(14, 250, 1);
  CliqueOptions clique;
  clique.xi = 8;
  clique.tau = 0.04;
  clique.max_dims = 2;
  auto all = RunClique(s.data, clique);
  ASSERT_TRUE(all.ok());
  RescuOptions opts;
  auto r = RunRescu(*all, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->clusters.size(), all->clusters.size());
  // Coverage: most objects still in some selected cluster.
  std::set<int> covered;
  for (const auto& c : r->clusters) {
    covered.insert(c.objects.begin(), c.objects.end());
  }
  EXPECT_GT(covered.size(), s.data.rows() / 2);
}

TEST(RescuTest, InvalidRedundancy) {
  RescuOptions opts;
  opts.max_redundancy = 1.0;
  EXPECT_FALSE(RunRescu(SubspaceClustering(), opts).ok());
}

TEST(StatpcTest, UniformDataYieldsNothingSignificant) {
  auto ds = MakeUniformCube(200, 3, 15);
  CliqueOptions clique;
  clique.xi = 4;
  clique.tau = 0.02;
  clique.max_dims = 2;
  auto all = RunClique(ds->data(), clique);
  ASSERT_TRUE(all.ok());
  StatpcOptions opts;
  opts.alpha0 = 1e-6;
  std::vector<StatpcScore> scores;
  auto r = RunStatpc(ds->data(), *all, opts, &scores);
  ASSERT_TRUE(r.ok());
  // Uniform data: almost nothing should be significant.
  EXPECT_LE(r->clusters.size(), 2u);
}

TEST(StatpcTest, PlantedClustersAreSignificant) {
  const SubspaceData s = MakeSubspaceData(16, 250, 1);
  CliqueOptions clique;
  clique.xi = 8;
  clique.tau = 0.04;
  clique.max_dims = 2;
  auto all = RunClique(s.data, clique);
  ASSERT_TRUE(all.ok());
  StatpcOptions opts;
  auto r = RunStatpc(s.data, *all, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->clusters.size(), 0u);
  EXPECT_LT(r->clusters.size(), all->clusters.size());
}

TEST(StatpcTest, InvalidAlpha) {
  StatpcOptions opts;
  opts.alpha0 = 0.0;
  EXPECT_FALSE(RunStatpc(Matrix(5, 2), SubspaceClustering(), opts).ok());
}

}  // namespace
}  // namespace multiclust
