// Chaos-campaign suite: schedule JSON round-trips, generator determinism,
// clean-schedule baselines, the invariant checker, delta-debugging
// shrinking, and the end-to-end bug-detection oracle — re-introducing the
// torn-write-rotates-out-last-good-snapshot bug (by disabling the
// Checkpointer's read-back verification) must be caught by the campaign
// and shrunk to a minimal schedule.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/chaos.h"
#include "common/checkpoint.h"
#include "common/fault.h"

namespace multiclust {
namespace {

#if defined(MULTICLUST_FAULT_INJECTION)

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Reset(); }
  void TearDown() override { fault::Reset(); }
};

// ---- schedule document ----------------------------------------------------

TEST_F(ChaosTest, ScheduleJsonRoundTrips) {
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    const chaos::RunConfig config = chaos::GenerateConfig(seed, true);
    const std::string doc = chaos::RunConfigToJson(config);
    auto parsed = chaos::ParseRunConfigJson(doc);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(chaos::RunConfigToJson(*parsed), doc) << "seed " << seed;
  }
}

TEST_F(ChaosTest, ParseRejectsBadDocuments) {
  EXPECT_FALSE(chaos::ParseRunConfigJson("not json").ok());
  EXPECT_FALSE(chaos::ParseRunConfigJson("{}").ok());
  EXPECT_FALSE(chaos::ParseRunConfigJson(
                   R"({"schema_version":1,"kind":"multiclust.chaos_schedule",)"
                   R"("workload":"no-such-algorithm"})")
                   .ok());
  EXPECT_FALSE(chaos::ParseRunConfigJson(
                   R"({"schema_version":1,"kind":"multiclust.chaos_schedule",)"
                   R"("workload":"kmeans","faults":[{"site":"kmeans",)"
                   R"("kind":"no_such_fault"}]})")
                   .ok());
}

TEST_F(ChaosTest, GeneratorIsDeterministic) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    EXPECT_EQ(chaos::RunConfigToJson(chaos::GenerateConfig(seed, false)),
              chaos::RunConfigToJson(chaos::GenerateConfig(seed, false)));
  }
}

TEST_F(ChaosTest, GeneratorCoversEveryWorkload) {
  std::vector<bool> seen(chaos::WorkloadNames().size(), false);
  for (uint64_t seed = 0; seed < 32; ++seed) {
    const chaos::RunConfig config = chaos::GenerateConfig(seed, true);
    for (size_t i = 0; i < chaos::WorkloadNames().size(); ++i) {
      if (config.workload == chaos::WorkloadNames()[i]) seen[i] = true;
    }
    EXPECT_FALSE(config.schedule.empty());
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << chaos::WorkloadNames()[i];
  }
}

// ---- clean schedules ------------------------------------------------------

TEST_F(ChaosTest, EveryWorkloadRunsCleanWithEmptySchedule) {
  for (const std::string& workload : chaos::WorkloadNames()) {
    chaos::RunConfig config;
    config.workload = workload;
    config.seed = 11;
    config.quick = true;
    auto outcome = chaos::RunSchedule(config);
    ASSERT_TRUE(outcome.ok()) << workload;
    EXPECT_TRUE(outcome->status.ok()) << workload;
    EXPECT_TRUE(outcome->violations.empty())
        << workload << ": " << outcome->violations[0].invariant << " — "
        << outcome->violations[0].detail;
    // No faults armed: the checkpointed run must equal the bare baseline.
    EXPECT_EQ(outcome->digest, outcome->baseline_digest) << workload;
    EXPECT_EQ(outcome->fault_fires, 0u) << workload;
  }
}

TEST_F(ChaosTest, CrashScheduleResumesBitIdentically) {
  chaos::RunConfig config;
  config.workload = "gmm";
  config.seed = 5;
  config.quick = true;
  config.keep_last = 2;
  FaultSpec crash;
  crash.site = "gmm";
  crash.kind = FaultKind::kCrash;
  crash.at_iteration = 3;
  crash.max_fires = 1;
  config.schedule.push_back(crash);
  auto outcome = chaos::RunSchedule(config);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->status.ok()) << outcome->status.ToString();
  EXPECT_EQ(outcome->resume_cycles, 1u);
  EXPECT_TRUE(outcome->violations.empty())
      << outcome->violations[0].detail;
  EXPECT_EQ(outcome->digest, outcome->baseline_digest);
}

TEST_F(ChaosTest, SmallCampaignHasNoViolations) {
  chaos::CampaignOptions options;
  options.base_seed = 1;
  options.num_seeds = 30;
  options.quick = true;
  const chaos::CampaignResult result = chaos::RunCampaign(options);
  EXPECT_EQ(result.runs, 30u);
  ASSERT_TRUE(result.failures.empty())
      << result.failures[0].violations[0].invariant << " — "
      << result.failures[0].violations[0].detail << " (workload "
      << result.failures[0].config.workload << ")";
  EXPECT_GT(result.total_fault_fires, 0u);
}

// ---- shrinking ------------------------------------------------------------

FaultSpec NamedFault(const std::string& site) {
  FaultSpec spec;
  spec.site = site;
  spec.kind = FaultKind::kInjectNaN;
  spec.max_fires = 1;
  return spec;
}

TEST_F(ChaosTest, ShrinkFindsOneMinimalSubsetWithSyntheticPredicate) {
  chaos::RunConfig config;
  for (const char* site : {"a", "b", "c", "d", "e"}) {
    config.schedule.push_back(NamedFault(site));
  }
  // "Fails" exactly when both b and d are present — the 1-minimal failing
  // subset the shrinker must converge to, regardless of the extra noise.
  auto still_fails = [](const chaos::RunConfig& probe) {
    bool b = false, d = false;
    for (const FaultSpec& f : probe.schedule) {
      if (f.site == "b") b = true;
      if (f.site == "d") d = true;
    }
    return b && d;
  };
  const std::vector<FaultSpec> minimal =
      chaos::ShrinkSchedule(config, still_fails);
  ASSERT_EQ(minimal.size(), 2u);
  EXPECT_EQ(minimal[0].site, "b");
  EXPECT_EQ(minimal[1].site, "d");
}

TEST_F(ChaosTest, ShrinkKeepsSingleFaultSchedules) {
  chaos::RunConfig config;
  config.schedule.push_back(NamedFault("only"));
  size_t probes = 0;
  const std::vector<FaultSpec> minimal = chaos::ShrinkSchedule(
      config, [&](const chaos::RunConfig&) {
        ++probes;
        return true;
      });
  EXPECT_EQ(minimal.size(), 1u);
  EXPECT_EQ(probes, 0u);  // nothing to remove, nothing to probe
}

// ---- the bug-detection oracle ---------------------------------------------

// Reverting the rotation fix (snapshots only count once read-back
// verification passes) must be caught: with verification disabled, a
// silently torn write is counted as a good snapshot, rotation deletes the
// last good file, and the checkpoint-survivor invariant fires. The
// campaign must then shrink the schedule to the torn-write fault alone.
TEST_F(ChaosTest, ReintroducedRotationBugIsCaughtAndShrunk) {
  chaos::RunConfig config;
  config.workload = "kmeans";
  config.seed = 7;
  config.quick = true;
  config.keep_last = 1;  // tightest rotation: one bad write is fatal
  FaultSpec torn;
  torn.site = "checkpoint";
  torn.kind = FaultKind::kIoTornWrite;
  torn.at_iteration = 0;
  torn.max_fires = 0;  // tear every write
  config.schedule.push_back(torn);
  // Decoy faults the shrinker must discard.
  FaultSpec decoy1;
  decoy1.site = "checkpoint";
  decoy1.kind = FaultKind::kIoFsyncFail;
  decoy1.at_iteration = 2;
  decoy1.max_fires = 1;
  config.schedule.push_back(decoy1);
  FaultSpec decoy2 = NamedFault("gmm");  // wrong site, never fires
  config.schedule.push_back(decoy2);

  // With the fix in place the schedule is harmless: every torn write is
  // detected, removed and warned about; no snapshot ever "counts".
  {
    auto outcome = chaos::RunSchedule(config);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->violations.empty())
        << outcome->violations[0].detail;
    EXPECT_EQ(outcome->snapshots_written, 0u);
    EXPECT_EQ(outcome->digest, outcome->baseline_digest);
  }

  // Revert the fix: verification off reintroduces the original bug.
  const bool previous = ckpt::SetVerifyAfterWriteForTest(false);
  auto outcome = chaos::RunSchedule(config);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->violations.empty());
  EXPECT_EQ(outcome->violations[0].invariant, "checkpoint-survivor");

  const std::vector<FaultSpec> minimal = chaos::ShrinkSchedule(config);
  ckpt::SetVerifyAfterWriteForTest(previous);

  ASSERT_LE(minimal.size(), 2u);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0].kind, FaultKind::kIoTornWrite);
  EXPECT_EQ(minimal[0].site, "checkpoint");
}

// Injected NaN / allocation faults must degrade to kComputationError — the
// status-consistency invariant accepts that and nothing else.
TEST_F(ChaosTest, ComputationFaultsDegradeToComputationError) {
  chaos::RunConfig config;
  config.workload = "co-em";
  config.seed = 9;
  config.quick = true;
  config.with_checkpoint = false;
  FaultSpec alloc;
  alloc.site = "co-em";
  alloc.kind = FaultKind::kAllocFail;
  alloc.at_iteration = 1;
  alloc.max_fires = 1;
  config.schedule.push_back(alloc);
  auto outcome = chaos::RunSchedule(config);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->status.code(), StatusCode::kComputationError);
  EXPECT_TRUE(outcome->violations.empty())
      << outcome->violations[0].detail;
}

// Probabilistic specs replay bit-identically: the same schedule JSON fires
// the same coins, so the whole outcome (digest, fires, status) matches.
TEST_F(ChaosTest, ProbabilisticSchedulesReplayIdentically) {
  chaos::RunConfig config;
  config.workload = "kmeans";
  config.seed = 13;
  config.quick = true;
  FaultSpec flaky;
  flaky.site = "checkpoint";
  flaky.kind = FaultKind::kIoWriteFail;
  flaky.at_iteration = 0;
  flaky.max_fires = 0;
  flaky.probability = 0.5;
  flaky.seed = 0xFEEDFACE;
  config.schedule.push_back(flaky);
  auto first = chaos::RunSchedule(config);
  auto second = chaos::RunSchedule(config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->fault_fires, second->fault_fires);
  EXPECT_EQ(first->digest, second->digest);
  EXPECT_EQ(first->status.code(), second->status.code());
  EXPECT_TRUE(first->violations.empty());
}

#else  // !MULTICLUST_FAULT_INJECTION

TEST(ChaosTest, StubbedWithoutFaultInjection) {
  chaos::RunConfig config;
  auto outcome = chaos::RunSchedule(config);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnimplemented);
}

#endif  // MULTICLUST_FAULT_INJECTION

}  // namespace
}  // namespace multiclust
