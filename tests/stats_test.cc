#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/generators.h"
#include "stats/contingency.h"
#include "stats/entropy.h"
#include "stats/grid.h"
#include "stats/hsic.h"
#include "stats/kde.h"
#include "stats/tails.h"

namespace multiclust {
namespace {

TEST(DenseRelabelTest, CompactsAndPreservesNoise) {
  std::vector<int> out;
  const size_t k = DenseRelabel({5, -1, 7, 5, 9}, &out);
  EXPECT_EQ(k, 3u);
  EXPECT_EQ(out, (std::vector<int>{0, -1, 1, 0, 2}));
}

TEST(ContingencyTest, BuildsCounts) {
  auto t = ContingencyTable::Build({0, 0, 1, 1}, {0, 1, 0, 1});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows(), 2u);
  EXPECT_EQ(t->cols(), 2u);
  EXPECT_EQ(t->at(0, 0), 1u);
  EXPECT_EQ(t->at(1, 1), 1u);
  EXPECT_EQ(t->total(), 4u);
}

TEST(ContingencyTest, ExcludesNoise) {
  auto t = ContingencyTable::Build({0, -1, 1}, {0, 0, -1});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->total(), 1u);
}

TEST(ContingencyTest, SizeMismatchRejected) {
  EXPECT_FALSE(ContingencyTable::Build({0}, {0, 1}).ok());
}

TEST(ContingencyTest, PairCountsIdenticalPartitions) {
  auto t = ContingencyTable::Build({0, 0, 1, 1}, {0, 0, 1, 1});
  ASSERT_TRUE(t.ok());
  const auto pc = t->pair_counts();
  EXPECT_DOUBLE_EQ(pc.same_both, 2.0);     // (0,1) and (2,3)
  EXPECT_DOUBLE_EQ(pc.same_a_only, 0.0);
  EXPECT_DOUBLE_EQ(pc.same_b_only, 0.0);
  EXPECT_DOUBLE_EQ(pc.same_neither, 4.0);  // cross pairs
}

TEST(ContingencyTest, UniformityDeviationExtremes) {
  // Perfectly uniform 2x2 table.
  auto uniform = ContingencyTable::Build({0, 0, 1, 1}, {0, 1, 0, 1});
  ASSERT_TRUE(uniform.ok());
  EXPECT_NEAR(uniform->UniformityDeviation(), 0.0, 1e-12);
  // Perfectly aligned partitions: far from uniform.
  auto aligned = ContingencyTable::Build({0, 0, 1, 1}, {0, 0, 1, 1});
  ASSERT_TRUE(aligned.ok());
  EXPECT_GT(aligned->UniformityDeviation(), 0.4);
}

TEST(EntropyTest, UniformCountsMaxEntropy) {
  EXPECT_NEAR(EntropyFromCounts({10, 10, 10, 10}), std::log(4.0), 1e-12);
  EXPECT_DOUBLE_EQ(EntropyFromCounts({42}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyFromCounts({}), 0.0);
}

TEST(EntropyTest, ProbsMatchCounts) {
  EXPECT_NEAR(EntropyFromProbs({0.5, 0.5}), std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(EntropyFromProbs({1.0, 0.0}), 0.0);
}

TEST(EntropyTest, LabelEntropyIgnoresNoise) {
  EXPECT_NEAR(LabelEntropy({0, 1, -1, -1}), std::log(2.0), 1e-12);
}

TEST(MutualInformationTest, IdenticalEqualsEntropy) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2};
  auto mi = MutualInformation(a, a);
  ASSERT_TRUE(mi.ok());
  EXPECT_NEAR(*mi, LabelEntropy(a), 1e-12);
}

TEST(MutualInformationTest, IndependentIsZero) {
  // Perfectly crossed partitions.
  const std::vector<int> a = {0, 0, 1, 1};
  const std::vector<int> b = {0, 1, 0, 1};
  EXPECT_NEAR(MutualInformation(a, b).value(), 0.0, 1e-12);
}

TEST(MutualInformationTest, Symmetric) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 0};
  const std::vector<int> b = {1, 0, 1, 1, 0, 0};
  EXPECT_NEAR(MutualInformation(a, b).value(),
              MutualInformation(b, a).value(), 1e-12);
}

TEST(ConditionalEntropyTest, SelfIsZero) {
  const std::vector<int> a = {0, 1, 2, 0, 1, 2};
  EXPECT_NEAR(ConditionalEntropy(a, a).value(), 0.0, 1e-12);
}

TEST(ConditionalEntropyTest, ChainRule) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 0};
  const std::vector<int> b = {1, 0, 1, 1, 0, 0};
  // H(A,B) = H(B) + H(A|B).
  EXPECT_NEAR(JointEntropy(a, b).value(),
              LabelEntropy(b) + ConditionalEntropy(a, b).value(), 1e-12);
}

TEST(KlDivergenceTest, ZeroForIdentical) {
  EXPECT_NEAR(KlDivergence({0.3, 0.7}, {0.3, 0.7}), 0.0, 1e-12);
}

TEST(KlDivergenceTest, PositiveForDifferent) {
  EXPECT_GT(KlDivergence({0.9, 0.1}, {0.1, 0.9}), 0.5);
}

TEST(GridTest, IntervalMapping) {
  const Matrix data = Matrix::FromRows({{0.0}, {1.0}, {0.49}, {0.51}});
  auto grid = Grid::Build(data, 2);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->CellOf(0, 0), 0);
  EXPECT_EQ(grid->CellOf(1, 0), 1);  // max clamps to last interval
  EXPECT_EQ(grid->CellOf(2, 0), 0);
  EXPECT_EQ(grid->CellOf(3, 0), 1);
  EXPECT_DOUBLE_EQ(grid->IntervalLower(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grid->IntervalUpper(0, 1), 1.0);
}

TEST(GridTest, RejectsBadInputs) {
  EXPECT_FALSE(Grid::Build(Matrix(), 5).ok());
  EXPECT_FALSE(Grid::Build(Matrix(2, 2), 0).ok());
}

TEST(GridTest, EntropyMonotoneInDims) {
  auto ds = MakeUniformCube(300, 3, 55);
  ASSERT_TRUE(ds.ok());
  auto grid = Grid::Build(ds->data(), 4);
  ASSERT_TRUE(grid.ok());
  const double h1 = grid->SubspaceEntropy({0});
  const double h2 = grid->SubspaceEntropy({0, 1});
  const double h3 = grid->SubspaceEntropy({0, 1, 2});
  EXPECT_LE(h1, h2 + 1e-12);
  EXPECT_LE(h2, h3 + 1e-12);
}

TEST(GridTest, ClusteredDataHasLowerEntropyThanUniform) {
  auto clustered = MakeBlobs({{{0, 0}, 0.3, 150}, {{10, 10}, 0.3, 150}}, 56);
  auto uniform = MakeUniformCube(300, 2, 57);
  ASSERT_TRUE(clustered.ok() && uniform.ok());
  auto gc = Grid::Build(clustered->data(), 8);
  auto gu = Grid::Build(uniform->data(), 8);
  ASSERT_TRUE(gc.ok() && gu.ok());
  EXPECT_LT(gc->SubspaceEntropy({0, 1}), gu->SubspaceEntropy({0, 1}));
}

TEST(MineDenseUnitsTest, MonotonicitySupportShrinks) {
  auto ds = MakeBlobs({{{0, 0, 0}, 0.5, 100}}, 58);
  ASSERT_TRUE(ds.ok());
  auto grid = Grid::Build(ds->data(), 4);
  ASSERT_TRUE(grid.ok());
  const std::vector<size_t> thresholds(4, 5);
  const auto units = MineDenseUnits(*grid, thresholds, 0);
  ASSERT_FALSE(units.empty());
  for (const GridUnit& u : units) {
    EXPECT_GE(u.objects.size(), 5u);
    // Every projection of a dense unit must itself be dense: check that
    // removing one constraint yields a unit with superset support.
    if (u.constraints.size() >= 2) {
      for (const GridUnit& lower : units) {
        if (lower.constraints.size() != u.constraints.size() - 1) continue;
      }
    }
  }
  // Units exist at dimensionality up to 3 for one tight blob.
  size_t max_dims = 0;
  for (const GridUnit& u : units) {
    max_dims = std::max(max_dims, u.constraints.size());
  }
  EXPECT_EQ(max_dims, 3u);
}

TEST(MineDenseUnitsTest, MaxDimsCapRespected) {
  auto ds = MakeBlobs({{{0, 0, 0}, 0.5, 100}}, 59);
  auto grid = Grid::Build(ds->data(), 4);
  ASSERT_TRUE(grid.ok());
  const auto units = MineDenseUnits(*grid, std::vector<size_t>(4, 5), 2);
  for (const GridUnit& u : units) {
    EXPECT_LE(u.constraints.size(), 2u);
  }
}

TEST(KdeTest, DensityHigherNearData) {
  auto ds = MakeBlobs({{{0.0, 0.0}, 0.5, 200}}, 60);
  ASSERT_TRUE(ds.ok());
  auto kde = KernelDensity::Fit(ds->data());
  ASSERT_TRUE(kde.ok());
  EXPECT_GT(kde->Density({0.0, 0.0}), kde->Density({10.0, 10.0}));
}

TEST(KdeTest, Integrates1D) {
  // Numerically integrate a 1-D KDE; should be close to 1.
  auto ds = MakeBlobs({{{0.0}, 1.0, 100}}, 61);
  ASSERT_TRUE(ds.ok());
  auto kde = KernelDensity::Fit(ds->data());
  ASSERT_TRUE(kde.ok());
  double integral = 0.0;
  const double dx = 0.05;
  for (double x = -8.0; x <= 8.0; x += dx) {
    integral += kde->Density({x}) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(KdeTest, ExplicitBandwidthUsed) {
  const Matrix data = Matrix::FromRows({{0.0}, {1.0}});
  auto kde = KernelDensity::Fit(data, 0.7);
  ASSERT_TRUE(kde.ok());
  EXPECT_DOUBLE_EQ(kde->bandwidths()[0], 0.7);
}

TEST(DensityProfileTest, RowsPerClusterSumToOne) {
  const std::vector<double> values = {0, 0.1, 0.9, 1.0, 0.5};
  const std::vector<int> labels = {0, 0, 1, 1, -1};
  auto profile = DensityProfile(values, labels, 4);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->rows(), 2u);
  for (size_t c = 0; c < 2; ++c) {
    double sum = 0;
    for (size_t b = 0; b < 4; ++b) sum += profile->at(c, b);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  // Cluster 0 mass in low bins, cluster 1 in high bins.
  EXPECT_GT(profile->at(0, 0), 0.9);
  EXPECT_GT(profile->at(1, 3), 0.9);
}

TEST(HsicTest, DependentBeatsIndependent) {
  Rng rng(62);
  const size_t n = 80;
  Matrix x(n, 1), y_dep(n, 1), y_ind(n, 1);
  for (size_t i = 0; i < n; ++i) {
    const double v = rng.Gaussian(0, 1);
    x.at(i, 0) = v;
    y_dep.at(i, 0) = v * v + rng.Gaussian(0, 0.1);
    y_ind.at(i, 0) = rng.Gaussian(0, 1);
  }
  const double h_dep = Hsic(x, y_dep).value();
  const double h_ind = Hsic(x, y_ind).value();
  EXPECT_GT(h_dep, h_ind * 3);
}

TEST(HsicTest, RejectsUnpairedRows) {
  EXPECT_FALSE(Hsic(Matrix(3, 1), Matrix(4, 1)).ok());
  EXPECT_FALSE(Hsic(Matrix(1, 1), Matrix(1, 1)).ok());
}

TEST(KernelMatrixTest, DiagonalOnesSymmetric) {
  auto ds = MakeUniformCube(20, 3, 63);
  ASSERT_TRUE(ds.ok());
  const Matrix k = GaussianKernelMatrix(ds->data());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(k.at(i, i), 1.0);
    for (size_t j = 0; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(k.at(i, j), k.at(j, i));
      EXPECT_GE(k.at(i, j), 0.0);
      EXPECT_LE(k.at(i, j), 1.0);
    }
  }
}

TEST(TailsTest, HoeffdingDecreasesWithT) {
  EXPECT_GT(HoeffdingUpperTail(100, 0.1, 0.05),
            HoeffdingUpperTail(100, 0.1, 0.2));
  EXPECT_DOUBLE_EQ(HoeffdingUpperTail(100, 0.1, -0.1), 1.0);
}

TEST(TailsTest, SchismThresholdDecreasesWithDims) {
  // The headline property from slide 73: the threshold adapts (decreases)
  // with subspace dimensionality.
  double prev = 1.1;
  for (size_t s = 1; s <= 8; ++s) {
    const double t = SchismThresholdFraction(s, 10, 1000, 0.05);
    EXPECT_LE(t, prev + 1e-15);
    prev = t;
  }
  // And it approaches the pure slack term for high s.
  const double slack = std::sqrt(std::log(1.0 / 0.05) / 2000.0);
  EXPECT_NEAR(SchismThresholdFraction(20, 10, 1000, 0.05), slack, 1e-6);
}

TEST(TailsTest, LogChooseKnownValues) {
  EXPECT_NEAR(LogChoose(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogChoose(10, 0), 0.0, 1e-12);
  EXPECT_EQ(LogChoose(3, 5), -INFINITY);
}

TEST(TailsTest, BinomialUpperTailSanity) {
  // P[X >= 0] = 1.
  EXPECT_DOUBLE_EQ(BinomialUpperTail(10, 0, 0.3), 1.0);
  // P[X >= n+...] decreasing in k.
  EXPECT_GT(BinomialUpperTail(100, 10, 0.2), BinomialUpperTail(100, 40, 0.2));
  // Known: X ~ Bin(2, 0.5), P[X >= 1] = 0.75.
  EXPECT_NEAR(BinomialUpperTail(2, 1, 0.5), 0.75, 1e-12);
  // P[X >= 2] = 0.25.
  EXPECT_NEAR(BinomialUpperTail(2, 2, 0.5), 0.25, 1e-12);
}

TEST(TailsTest, BinomialTailSignificanceSeparates) {
  // 50 of 100 points in a region expected to hold 10%: very significant.
  EXPECT_LT(BinomialUpperTail(100, 50, 0.1), 1e-10);
  // 12 of 100 in a 10% region: not significant.
  EXPECT_GT(BinomialUpperTail(100, 12, 0.1), 0.2);
}

}  // namespace
}  // namespace multiclust
