// End-to-end scenarios exercising generator -> algorithm -> metric
// pipelines across modules, mirroring the tutorial's application stories.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "altspace/coala.h"
#include "altspace/dec_kmeans.h"
#include "cluster/kmeans.h"
#include "core/objectives.h"
#include "data/csv.h"
#include "data/generators.h"
#include "metrics/multi_solution.h"
#include "metrics/partition_similarity.h"
#include "multiview/co_em.h"
#include "multiview/mv_dbscan.h"
#include "orthogonal/ortho_projection.h"
#include "subspace/clique.h"
#include "subspace/osclu.h"

namespace multiclust {
namespace {

TEST(IntegrationTest, CustomerScenarioSubspacePipeline) {
  // The tutorial's slide 14-18 story: customers cluster differently by
  // professional vs leisure attributes. CLIQUE mines all projections,
  // OSCLU selects the orthogonal concepts; both planted views must appear.
  auto ds = MakeCustomerScenario(250, 1);
  ASSERT_TRUE(ds.ok());
  CliqueOptions clique;
  clique.xi = 8;
  clique.tau = 0.04;
  clique.max_dims = 3;
  auto all = RunClique(ds->data(), clique);
  ASSERT_TRUE(all.ok());
  OscluOptions osclu;
  osclu.beta = 0.5;
  osclu.alpha = 0.4;
  auto selected = RunOsclu(*all, osclu);
  ASSERT_TRUE(selected.ok());
  ASSERT_GT(selected->clusters.size(), 0u);
  EXPECT_LT(selected->clusters.size(), all->clusters.size());

  const auto professional = ds->GroundTruth("professional").value();
  const auto leisure = ds->GroundTruth("leisure").value();
  EXPECT_GT(SubspacePairF1(*selected, professional).value(), 0.2);
  EXPECT_GT(SubspacePairF1(*selected, leisure).value(), 0.2);
}

TEST(IntegrationTest, FourSquaresSimultaneousAndIterative) {
  // Both paradigms recover the two alternative splits of the toy example:
  // Dec-kMeans simultaneously, COALA iteratively from given knowledge.
  auto ds = MakeFourSquares(40, 10.0, 0.8, 2);
  ASSERT_TRUE(ds.ok());
  const auto horizontal = ds->GroundTruth("horizontal").value();
  const auto vertical = ds->GroundTruth("vertical").value();

  DecKMeansOptions dk;
  dk.ks = {2, 2};
  dk.lambda = 4.0;
  dk.restarts = 5;
  dk.seed = 2;
  auto sim = RunDecorrelatedKMeans(ds->data(), dk);
  ASSERT_TRUE(sim.ok());
  auto match = MatchSolutionsToTruths({horizontal, vertical},
                                      sim->solutions.Labels());
  EXPECT_GT(match->mean_recovery, 0.8);

  CoalaOptions co;
  co.k = 2;
  co.w = 0.4;
  auto alt = RunCoala(ds->data(), horizontal, co);
  ASSERT_TRUE(alt.ok());
  EXPECT_GT(NormalizedMutualInformation(alt->labels, vertical).value(), 0.6);
}

TEST(IntegrationTest, OrthoProjectionThenObjectiveEvaluation) {
  // Section-3 pipeline evaluated under the abstract slide-27 objective:
  // multiple solutions with high Q and high pairwise Diss.
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 12.0, 0.8, ""};
  views[1] = {2, 2, 12.0, 0.8, ""};
  auto ds = MakeMultiView(180, views, 0, 3);
  ASSERT_TRUE(ds.ok());
  KMeansOptions km;
  km.k = 2;
  km.restarts = 5;
  km.seed = 3;
  KMeansClusterer clusterer(km);
  OrthoProjectionOptions opts;
  opts.max_views = 2;
  auto r = RunOrthoProjection(ds->data(), &clusterer, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->solutions.size(), 2u);
  auto report = EvaluateObjective(ds->data(), r->solutions,
                                  NegativeSseQuality(), NmiDissimilarity(),
                                  1.0);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->mean_dissimilarity, 0.5);
}

TEST(IntegrationTest, SensorScenarioMultiView) {
  // Slide-6 story: sensors with temperature and humidity views; co-EM on a
  // consistent sub-problem and mv-DBSCAN both run end to end.
  auto ds = MakeSensorScenario(150, 0.1, 4);
  ASSERT_TRUE(ds.ok());
  const Matrix temp_view = ds->data().SelectColumns({0, 1});
  const Matrix hum_view = ds->data().SelectColumns({2, 3});

  MvDbscanOptions mv;
  mv.eps = {1.5, 1.5};
  mv.min_pts = 4;
  mv.combination = ViewCombination::kIntersection;
  auto joint = RunMvDbscan({temp_view, hum_view}, mv);
  ASSERT_TRUE(joint.ok());

  // The intersection clustering respects *both* planted groupings: within
  // a joint cluster, temperature labels and humidity labels are constant,
  // so NMI against each view is substantial.
  const auto temperature = ds->GroundTruth("temperature").value();
  if (joint->NumClusters() >= 2) {
    EXPECT_GT(
        NormalizedMutualInformation(joint->labels, temperature).value(),
        0.3);
  }
}

TEST(IntegrationTest, CsvPersistedDatasetReproducesResults) {
  // Persist a generated dataset, read it back, and verify an algorithm
  // produces the identical clustering on both copies.
  auto ds = MakeFourSquares(25, 9.0, 0.6, 5);
  ASSERT_TRUE(ds.ok());
  const std::string path =
      ::testing::TempDir() + "/multiclust_integration.csv";
  ASSERT_TRUE(WriteCsv(*ds, path).ok());
  CsvOptions opts;
  auto back = ReadCsv(path, opts);
  ASSERT_TRUE(back.ok());
  const Matrix original = ds->data();
  const Matrix reread = back->data().SelectColumns({0, 1});
  EXPECT_LT(original.MaxAbsDiff(reread), 1e-9);

  KMeansOptions km;
  km.k = 4;
  km.restarts = 3;
  km.seed = 5;
  auto c1 = RunKMeans(original, km);
  auto c2 = RunKMeans(reread, km);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_EQ(c1->labels, c2->labels);
  std::remove(path.c_str());
}

TEST(IntegrationTest, GeneScenarioOverlappingMembership) {
  // Slide-5 story: genes with multiple functional roles. Subspace mining
  // must place some gene in clusters of *different* subspaces.
  auto ds = MakeGeneExpression(150, 10, 3, 5.0, 0.8, 6);
  ASSERT_TRUE(ds.ok());
  CliqueOptions clique;
  clique.xi = 5;
  clique.tau = 0.1;
  clique.max_dims = 2;
  auto r = RunClique(ds->data(), clique);
  ASSERT_TRUE(r.ok());
  ASSERT_GT(r->clusters.size(), 1u);
  // Find a gene clustered under at least two distinct subspaces.
  bool multi_role = false;
  for (size_t g = 0; g < 150 && !multi_role; ++g) {
    std::set<std::vector<size_t>> subspaces;
    for (const auto& c : r->clusters) {
      if (std::binary_search(c.objects.begin(), c.objects.end(),
                             static_cast<int>(g))) {
        subspaces.insert(c.dims);
      }
    }
    multi_role = subspaces.size() >= 2;
  }
  EXPECT_TRUE(multi_role);
}

}  // namespace
}  // namespace multiclust
