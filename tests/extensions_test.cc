// Tests for the extension modules: discrete data + CIB, disparate
// clustering, DOC, ORCLUS, multiple spectral views, and the discovery
// pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "altspace/cib.h"
#include "altspace/disparate.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "data/discrete.h"
#include "data/generators.h"
#include "metrics/multi_solution.h"
#include "metrics/partition_similarity.h"
#include "stats/contingency.h"
#include "subspace/doc.h"
#include "subspace/msc.h"
#include "subspace/orclus.h"
#include "subspace/proclus.h"

namespace multiclust {
namespace {

// ---------------------------------------------------------------------
// Discrete data.
TEST(DocumentTermTest, ShapeAndTruths) {
  DocumentTermSpec spec;
  spec.num_documents = 100;
  spec.seed = 1;
  auto ds = MakeDocumentTerm(spec);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_objects(), 100u);
  EXPECT_EQ(ds->num_dims(), spec.vocab_a + spec.vocab_b + spec.vocab_common);
  EXPECT_TRUE(ds->GroundTruth("topicsA").ok());
  EXPECT_TRUE(ds->GroundTruth("topicsB").ok());
  // Counts are non-negative and each document has doc_length words.
  for (size_t i = 0; i < ds->num_objects(); ++i) {
    double total = 0;
    for (size_t j = 0; j < ds->num_dims(); ++j) {
      EXPECT_GE(ds->data().at(i, j), 0.0);
      total += ds->data().at(i, j);
    }
    EXPECT_DOUBLE_EQ(total, static_cast<double>(spec.doc_length));
  }
}

TEST(DocumentTermTest, TopicWordsAreEnriched) {
  DocumentTermSpec spec;
  spec.num_documents = 150;
  spec.topic_sharpness = 0.8;
  spec.seed = 2;
  auto ds = MakeDocumentTerm(spec);
  ASSERT_TRUE(ds.ok());
  const auto topics = ds->GroundTruth("topicsA").value();
  // Documents of A-topic 0 use the first block-A words far more often than
  // documents of other A-topics.
  double in_topic = 0, out_topic = 0;
  size_t n_in = 0, n_out = 0;
  const size_t per_topic = spec.vocab_a / spec.topics_a;
  for (size_t i = 0; i < ds->num_objects(); ++i) {
    double mass = 0;
    for (size_t w = 0; w < per_topic; ++w) mass += ds->data().at(i, w);
    if (topics[i] == 0) {
      in_topic += mass;
      ++n_in;
    } else {
      out_topic += mass;
      ++n_out;
    }
  }
  ASSERT_GT(n_in, 0u);
  ASSERT_GT(n_out, 0u);
  EXPECT_GT(in_topic / n_in, 3.0 * (out_topic / n_out));
}

TEST(DocumentTermTest, InvalidSpecsRejected) {
  DocumentTermSpec spec;
  spec.topics_a = 0;
  EXPECT_FALSE(MakeDocumentTerm(spec).ok());
  spec = DocumentTermSpec();
  spec.vocab_a = 2;
  spec.topics_a = 3;
  EXPECT_FALSE(MakeDocumentTerm(spec).ok());
  spec = DocumentTermSpec();
  spec.topic_sharpness = 1.5;
  EXPECT_FALSE(MakeDocumentTerm(spec).ok());
}

TEST(JointDistributionTest, NormalisesAndValidates) {
  Matrix counts = Matrix::FromRows({{1, 3}, {0, 4}});
  auto joint = JointDistributionFromCounts(counts);
  ASSERT_TRUE(joint.ok());
  double total = 0;
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) total += joint->at(i, j);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_FALSE(JointDistributionFromCounts(Matrix(2, 2)).ok());
  Matrix negative = Matrix::FromRows({{-1.0, 2.0}});
  EXPECT_FALSE(JointDistributionFromCounts(negative).ok());
}

// ---------------------------------------------------------------------
// Conditional information bottleneck.
TEST(CibTest, InformationHelpersSane) {
  DocumentTermSpec spec;
  spec.num_documents = 120;
  spec.seed = 3;
  auto ds = MakeDocumentTerm(spec);
  ASSERT_TRUE(ds.ok());
  const auto a = ds->GroundTruth("topicsA").value();
  const auto b = ds->GroundTruth("topicsB").value();
  // I(Y; A) > 0 since topics drive word usage.
  EXPECT_GT(FeatureInformation(ds->data(), a).value(), 0.05);
  // Conditioning on A itself kills the information: I(Y; A | A) = 0.
  EXPECT_NEAR(
      ConditionalFeatureInformation(ds->data(), a, a).value(), 0.0, 1e-9);
  // B still carries information about Y beyond A.
  EXPECT_GT(ConditionalFeatureInformation(ds->data(), b, a).value(), 0.05);
}

TEST(CibTest, FindsNovelTopicSystemGivenKnown) {
  DocumentTermSpec spec;
  spec.num_documents = 160;
  spec.seed = 4;
  auto ds = MakeDocumentTerm(spec);
  ASSERT_TRUE(ds.ok());
  const auto known = ds->GroundTruth("topicsA").value();
  const auto novel = ds->GroundTruth("topicsB").value();
  CibOptions opts;
  opts.k = 2;
  opts.seed = 4;
  auto r = RunCib(ds->data(), known, opts);
  ASSERT_TRUE(r.ok());
  const double to_novel =
      NormalizedMutualInformation(r->clustering.labels, novel).value();
  const double to_known =
      NormalizedMutualInformation(r->clustering.labels, known).value();
  EXPECT_GT(to_novel, to_known);
  EXPECT_GT(to_novel, 0.5);
}

TEST(CibTest, ObjectiveMatchesReportedValue) {
  DocumentTermSpec spec;
  spec.num_documents = 80;
  spec.seed = 5;
  auto ds = MakeDocumentTerm(spec);
  const auto known = ds->GroundTruth("topicsA").value();
  CibOptions opts;
  opts.k = 2;
  opts.seed = 5;
  auto r = RunCib(ds->data(), known, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->conditional_information,
              ConditionalFeatureInformation(ds->data(),
                                            r->clustering.labels, known)
                  .value(),
              1e-9);
}

TEST(CibTest, InvalidInputs) {
  CibOptions opts;
  EXPECT_FALSE(RunCib(Matrix(), {}, opts).ok());
  Matrix counts(4, 3);
  EXPECT_FALSE(RunCib(counts, {0, 0, 1}, opts).ok());  // size mismatch
  opts.k = 0;
  EXPECT_FALSE(RunCib(counts, {0, 0, 1, 1}, opts).ok());
  opts.k = 2;
  Matrix negative = Matrix::FromRows({{1, -2}, {0, 1}});
  EXPECT_FALSE(RunCib(negative, {0, 1}, opts).ok());
}

// ---------------------------------------------------------------------
// Disparate / dependent clustering.
TEST(DisparateTest, FindsOrthogonalPairOnFourSquares) {
  auto ds = MakeFourSquares(40, 10.0, 0.8, 6);
  DisparateOptions opts;
  opts.k1 = 2;
  opts.k2 = 2;
  opts.goal = ContingencyGoal::kDisparate;
  opts.lambda = 1.0;
  opts.restarts = 4;
  opts.seed = 6;
  auto r = RunDisparateClustering(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->solutions.size(), 2u);
  // The two solutions are near-independent...
  EXPECT_GT(r->solutions.Diversity().value(), 0.7);
  // ...and the contingency table is near uniform.
  EXPECT_LT(r->uniformity_deviation, 0.2);
  // They recover the two planted splits.
  auto match = MatchSolutionsToTruths(
      {ds->GroundTruth("horizontal").value(),
       ds->GroundTruth("vertical").value()},
      r->solutions.Labels());
  EXPECT_GT(match->mean_recovery, 0.8);
}

TEST(DisparateTest, DependentModeAlignsSolutions) {
  auto ds = MakeFourSquares(40, 10.0, 0.8, 7);
  DisparateOptions opts;
  opts.k1 = 2;
  opts.k2 = 2;
  opts.goal = ContingencyGoal::kDependent;
  opts.lambda = 1.0;
  opts.restarts = 4;
  opts.seed = 7;
  auto r = RunDisparateClustering(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  // Dependent mode: the two clusterings coincide (NMI ~ 1 => diversity ~0).
  EXPECT_LT(r->solutions.Diversity().value(), 0.3);
}

TEST(DisparateTest, InvalidOptions) {
  DisparateOptions opts;
  opts.k1 = 0;
  EXPECT_FALSE(RunDisparateClustering(Matrix(10, 2), opts).ok());
  opts.k1 = 2;
  opts.lambda = -1;
  EXPECT_FALSE(RunDisparateClustering(Matrix(10, 2), opts).ok());
}

// ---------------------------------------------------------------------
// DOC.
TEST(DocTest, QualityFunction) {
  EXPECT_DOUBLE_EQ(DocQuality(10, 0, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(DocQuality(10, 2, 0.25), 160.0);
  // Higher dimensionality compensates smaller support (beta trade-off).
  EXPECT_GT(DocQuality(5, 3, 0.25), DocQuality(20, 1, 0.25));
}

TEST(DocTest, FindsPlantedProjectedClusters) {
  std::vector<ViewSpec> views(1);
  views[0] = {3, 3, 12.0, 0.5, ""};
  auto ds = MakeMultiView(240, views, 3, 8);
  ASSERT_TRUE(ds.ok());
  DocOptions opts;
  opts.k = 3;
  opts.w = 2.0;
  opts.seed = 8;
  opts.outer_trials = 40;
  auto r = RunDoc(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  ASSERT_GT(r->clusters.size(), 0u);
  // Found clusters should use mostly the 3 structured dims, not the noise.
  size_t structured = 0, noisy = 0;
  for (const auto& c : r->clusters) {
    for (size_t d : c.dims) {
      if (d < 3) {
        ++structured;
      } else {
        ++noisy;
      }
    }
  }
  EXPECT_GT(structured, noisy);
  // F1 of the discovered clusters against the planted view.
  EXPECT_GT(SubspacePairF1(*r, ds->GroundTruth("view0").value()).value(),
            0.4);
}

TEST(DocTest, RoundsRemoveObjects) {
  std::vector<ViewSpec> views(1);
  views[0] = {2, 2, 10.0, 0.5, ""};
  auto ds = MakeMultiView(120, views, 0, 9);
  DocOptions opts;
  opts.k = 2;
  opts.w = 2.0;
  opts.seed = 9;
  auto r = RunDoc(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  // Clusters from successive rounds are disjoint.
  std::set<int> seen;
  for (const auto& c : r->clusters) {
    for (int obj : c.objects) {
      EXPECT_TRUE(seen.insert(obj).second) << "object in two DOC clusters";
    }
  }
}

TEST(DocTest, InvalidOptions) {
  DocOptions opts;
  opts.w = 0;
  EXPECT_FALSE(RunDoc(Matrix(10, 2), opts).ok());
  opts.w = 1;
  opts.beta = 0.9;
  EXPECT_FALSE(RunDoc(Matrix(10, 2), opts).ok());
}

// ---------------------------------------------------------------------
// ORCLUS.
TEST(OrclusTest, ProjectedDistance) {
  // Basis = x axis only: distance ignores y.
  Matrix basis(2, 1);
  basis.at(0, 0) = 1.0;
  EXPECT_DOUBLE_EQ(
      ProjectedSquaredDistance({3, 100}, {0, 0}, basis), 9.0);
}

TEST(OrclusTest, RecoversOrientedClusters) {
  // Two elongated clusters along the diagonal directions — axis-parallel
  // methods see heavy overlap, oriented subspaces separate them.
  Rng rng(10);
  const size_t per = 80;
  Matrix data(2 * per, 2);
  std::vector<int> truth(2 * per);
  for (size_t i = 0; i < per; ++i) {
    const double t = rng.Gaussian(0, 4.0);
    const double s = rng.Gaussian(0, 0.25);
    // Cluster 0 along (1, 1), offset up-left.
    data.at(i, 0) = t + s - 2.0;
    data.at(i, 1) = t - s + 2.0;
    truth[i] = 0;
    // Cluster 1 along (1, 1), offset down-right.
    const double t2 = rng.Gaussian(0, 4.0);
    const double s2 = rng.Gaussian(0, 0.25);
    data.at(per + i, 0) = t2 + s2 + 2.0;
    data.at(per + i, 1) = t2 - s2 - 2.0;
    truth[per + i] = 1;
  }
  OrclusOptions opts;
  opts.k = 2;
  opts.l = 1;
  opts.seed = 10;
  auto r = RunOrclus(data, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(AdjustedRandIndex(r->clustering.labels, truth).value(), 0.9);
  // The oriented 1-D subspace of each cluster is (anti-)diagonal: basis
  // vector components have similar magnitude.
  for (const auto& sub : r->subspaces) {
    const double a = std::fabs(sub.basis.at(0, 0));
    const double b = std::fabs(sub.basis.at(1, 0));
    EXPECT_NEAR(a, b, 0.25);
  }
}

TEST(OrclusTest, BeatsAxisParallelOnOrientedData) {
  Rng rng(11);
  const size_t per = 70;
  Matrix data(2 * per, 3);
  std::vector<int> truth(2 * per);
  for (size_t i = 0; i < 2 * per; ++i) {
    const bool second = i >= per;
    const double t = rng.Gaussian(0, 4.0);
    const double s = rng.Gaussian(0, 0.3);
    data.at(i, 0) = t + (second ? 2.5 : -2.5);
    data.at(i, 1) = t + s + (second ? -2.5 : 2.5);
    data.at(i, 2) = rng.Gaussian(0, 2.0);  // irrelevant dim
    truth[i] = second ? 1 : 0;
  }
  OrclusOptions oo;
  oo.k = 2;
  oo.l = 1;
  oo.seed = 11;
  auto orclus = RunOrclus(data, oo);
  ASSERT_TRUE(orclus.ok());
  ProclusOptions po;
  po.k = 2;
  po.avg_dims = 2;
  po.seed = 11;
  auto proclus = RunProclus(data, po);
  ASSERT_TRUE(proclus.ok());
  const double ari_orclus =
      AdjustedRandIndex(orclus->clustering.labels, truth).value();
  const double ari_proclus =
      AdjustedRandIndex(proclus->clustering.labels, truth).value();
  EXPECT_GT(ari_orclus, ari_proclus);
  EXPECT_GT(ari_orclus, 0.8);
}

TEST(OrclusTest, InvalidOptions) {
  OrclusOptions opts;
  opts.k = 0;
  EXPECT_FALSE(RunOrclus(Matrix(10, 3), opts).ok());
  opts.k = 2;
  opts.l = 5;
  EXPECT_FALSE(RunOrclus(Matrix(10, 3), opts).ok());
}

// ---------------------------------------------------------------------
// Multiple spectral views (mSC).
TEST(MscTest, SeparatesIndependentViews) {
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 12.0, 0.8, ""};
  views[1] = {2, 2, 12.0, 0.8, ""};
  auto ds = MakeMultiView(160, views, 0, 12);
  ASSERT_TRUE(ds.ok());
  MscOptions opts;
  opts.num_views = 2;
  opts.k = 2;
  opts.seed = 12;
  auto r = RunMultipleSpectralViews(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->views.size(), 2u);
  // The dimension partition matches the planted blocks {0,1} / {2,3}.
  std::set<std::set<size_t>> found;
  for (const auto& v : r->views) {
    found.insert(std::set<size_t>(v.dims.begin(), v.dims.end()));
  }
  EXPECT_TRUE(found.count({0, 1}));
  EXPECT_TRUE(found.count({2, 3}));
  // Each view's clustering matches one planted truth.
  auto match = MatchSolutionsToTruths(
      {ds->GroundTruth("view0").value(), ds->GroundTruth("view1").value()},
      r->solutions.Labels());
  EXPECT_GT(match->mean_recovery, 0.9);
}

TEST(MscTest, DependenceMatrixIsSymmetricNonNegative) {
  auto ds = MakeUniformCube(60, 4, 13);
  MscOptions opts;
  opts.num_views = 2;
  opts.k = 2;
  auto r = RunMultipleSpectralViews(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  for (size_t a = 0; a < 4; ++a) {
    for (size_t b = 0; b < 4; ++b) {
      EXPECT_GE(r->dim_dependence.at(a, b), 0.0);
      EXPECT_NEAR(r->dim_dependence.at(a, b), r->dim_dependence.at(b, a),
                  1e-12);
    }
  }
}

TEST(MscTest, InvalidOptions) {
  MscOptions opts;
  opts.num_views = 0;
  EXPECT_FALSE(RunMultipleSpectralViews(Matrix(10, 3), opts).ok());
  opts.num_views = 5;
  EXPECT_FALSE(RunMultipleSpectralViews(Matrix(10, 3), opts).ok());
}

// ---------------------------------------------------------------------
// Discovery pipeline.
TEST(PipelineTest, SelectKBySilhouette) {
  auto ds = MakeBlobs({{{0, 0}, 0.5, 40},
                       {{8, 0}, 0.5, 40},
                       {{0, 8}, 0.5, 40}},
                      14);
  auto k = SelectKBySilhouette(ds->data(), 6, 14);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(*k, 3u);
}

TEST(PipelineTest, DiscoversBothSquareSplits) {
  auto ds = MakeFourSquares(40, 10.0, 0.8, 15);
  DiscoveryOptions opts;
  opts.strategy = DiscoveryStrategy::kDecorrelatedKMeans;
  opts.num_solutions = 2;
  opts.k = 2;
  opts.seed = 15;
  auto r = DiscoverMultipleClusterings(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->chosen_k, 2u);
  EXPECT_EQ(r->strategy_name, "dec-kmeans");
  ASSERT_EQ(r->solutions.size(), 2u);
  EXPECT_GT(r->objective.mean_dissimilarity, 0.7);
  auto match = MatchSolutionsToTruths(
      {ds->GroundTruth("horizontal").value(),
       ds->GroundTruth("vertical").value()},
      r->solutions.Labels());
  EXPECT_GT(match->mean_recovery, 0.8);
}

TEST(PipelineTest, AllStrategiesRun) {
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 14.0, 0.8, ""};
  views[1] = {2, 2, 9.0, 0.8, ""};
  auto ds = MakeMultiView(120, views, 0, 16);
  for (DiscoveryStrategy strategy :
       {DiscoveryStrategy::kDecorrelatedKMeans,
        DiscoveryStrategy::kOrthogonalProjections,
        DiscoveryStrategy::kSpectralViews,
        DiscoveryStrategy::kMetaClustering}) {
    DiscoveryOptions opts;
    opts.strategy = strategy;
    opts.num_solutions = 2;
    opts.k = 2;
    opts.seed = 16;
    auto r = DiscoverMultipleClusterings(ds->data(), opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GE(r->solutions.size(), 1u);
    EXPECT_FALSE(r->strategy_name.empty());
  }
}

TEST(PipelineTest, RejectsDegenerateRequests) {
  DiscoveryOptions opts;
  opts.num_solutions = 1;
  EXPECT_FALSE(DiscoverMultipleClusterings(Matrix(10, 2), opts).ok());
  opts.num_solutions = 2;
  EXPECT_FALSE(DiscoverMultipleClusterings(Matrix(), opts).ok());
}

}  // namespace
}  // namespace multiclust
