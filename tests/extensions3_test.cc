// Tests for the third extension wave: standardisation, stability
// estimation, and PreDeCon.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "data/generators.h"
#include "data/standardize.h"
#include "metrics/partition_similarity.h"
#include "metrics/stability.h"
#include "subspace/p3c.h"
#include "subspace/predecon.h"
#include "subspace/statpc.h"

namespace multiclust {
namespace {

// ---------------------------------------------------------------------
// Standardisation.
TEST(StandardizeTest, ZScoreMomentsAndRoundTrip) {
  auto ds = MakeBlobs({{{5, -3}, 2.0, 100}}, 1);
  auto scaler = FitZScore(ds->data());
  ASSERT_TRUE(scaler.ok());
  const Matrix z = scaler->Apply(ds->data());
  const std::vector<double> mean = RowMean(z);
  EXPECT_NEAR(mean[0], 0.0, 1e-9);
  EXPECT_NEAR(mean[1], 0.0, 1e-9);
  const Matrix cov = Covariance(z);
  EXPECT_NEAR(cov.at(0, 0), 1.0, 1e-9);
  EXPECT_NEAR(cov.at(1, 1), 1.0, 1e-9);
  // Round trip.
  EXPECT_LT(scaler->Invert(z).MaxAbsDiff(ds->data()), 1e-9);
}

TEST(StandardizeTest, MinMaxRange) {
  auto ds = MakeBlobs({{{10, 100}, 3.0, 80}}, 2);
  auto scaler = FitMinMax(ds->data());
  ASSERT_TRUE(scaler.ok());
  const Matrix s = scaler->Apply(ds->data());
  for (size_t i = 0; i < s.rows(); ++i) {
    for (size_t j = 0; j < s.cols(); ++j) {
      EXPECT_GE(s.at(i, j), -1e-12);
      EXPECT_LE(s.at(i, j), 1.0 + 1e-12);
    }
  }
}

TEST(StandardizeTest, ConstantColumnHandled) {
  Matrix data = Matrix::FromRows({{1, 7}, {2, 7}, {3, 7}});
  auto z = ZScore(data);
  ASSERT_TRUE(z.ok());
  // Constant column maps to 0, not NaN.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(z->at(i, 1), 0.0);
    EXPECT_TRUE(std::isfinite(z->at(i, 0)));
  }
}

TEST(StandardizeTest, EmptyRejected) {
  EXPECT_FALSE(FitZScore(Matrix()).ok());
  EXPECT_FALSE(FitMinMax(Matrix()).ok());
}

TEST(StandardizeTest, ScalingEqualisesDominantView) {
  // The practical point: z-scoring removes the artificial dominance of a
  // high-variance view, letting k-means see the weak one.
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 40.0, 1.0, "dom"};
  views[1] = {2, 2, 4.0, 0.3, "weak"};
  auto ds = MakeMultiView(200, views, 0, 3);
  const auto weak = ds->GroundTruth("weak").value();
  KMeansOptions km;
  km.k = 2;
  km.restarts = 8;
  km.seed = 3;
  auto raw = RunKMeans(ds->data(), km);
  auto scaled_data = ZScore(ds->data());
  ASSERT_TRUE(scaled_data.ok());
  auto scaled = RunKMeans(*scaled_data, km);
  const double raw_weak =
      NormalizedMutualInformation(raw->labels, weak).value();
  const double scaled_weak =
      NormalizedMutualInformation(scaled->labels, weak).value();
  // After scaling, the weak-but-crisp view (higher relative separation)
  // becomes visible to the clusterer.
  EXPECT_GT(scaled_weak, raw_weak);
}

// ---------------------------------------------------------------------
// Stability.
TEST(StabilityTest, RightKIsStabler) {
  auto ds = MakeBlobs({{{0, 0}, 0.5, 60},
                       {{8, 0}, 0.5, 60},
                       {{0, 8}, 0.5, 60}},
                      4);
  StabilityOptions opts;
  opts.rounds = 8;
  opts.seed = 4;
  auto k_fn = [](size_t k) {
    return [k](const Matrix& sub, uint64_t seed) -> Result<std::vector<int>> {
      KMeansOptions km;
      km.k = k;
      km.restarts = 3;
      km.seed = seed;
      MC_ASSIGN_OR_RETURN(Clustering c, RunKMeans(sub, km));
      return c.labels;
    };
  };
  auto right = EvaluateStability(ds->data(), k_fn(3), opts);
  auto wrong = EvaluateStability(ds->data(), k_fn(5), opts);
  ASSERT_TRUE(right.ok() && wrong.ok());
  EXPECT_GT(right->mean_ari, 0.95);
  EXPECT_GT(right->mean_ari, wrong->mean_ari);
}

TEST(StabilityTest, SelectKByStabilityFindsPlantedK) {
  auto ds = MakeBlobs({{{0, 0}, 0.5, 50},
                       {{9, 0}, 0.5, 50},
                       {{0, 9}, 0.5, 50}},
                      5);
  StabilityOptions opts;
  opts.rounds = 6;
  opts.seed = 5;
  auto k = SelectKByStability(ds->data(), 6, opts);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(*k, 3u);
}

TEST(StabilityTest, InvalidInputs) {
  StabilityOptions opts;
  ClusterFn fn = [](const Matrix& m, uint64_t) -> Result<std::vector<int>> {
    return std::vector<int>(m.rows(), 0);
  };
  EXPECT_FALSE(EvaluateStability(Matrix(2, 1), fn, opts).ok());
  opts.fraction = 0.0;
  EXPECT_FALSE(EvaluateStability(Matrix(20, 2), fn, opts).ok());
  opts.fraction = 0.8;
  EXPECT_FALSE(EvaluateStability(Matrix(20, 2), nullptr, opts).ok());
}

TEST(StabilityTest, WrongLabelCountRejected) {
  StabilityOptions opts;
  opts.seed = 6;
  ClusterFn bad = [](const Matrix&, uint64_t) -> Result<std::vector<int>> {
    return std::vector<int>{0, 1};  // always 2 labels, regardless of rows
  };
  auto ds = MakeUniformCube(40, 2, 6);
  EXPECT_FALSE(EvaluateStability(ds->data(), bad, opts).ok());
}

// ---------------------------------------------------------------------
// PreDeCon.
TEST(PredeconTest, FindsSubspaceClustersUnderNoiseDims) {
  // Two clusters crisp in dims {0,1}; dims {2,3} are wide uniform noise.
  std::vector<ViewSpec> views(1);
  views[0] = {2, 2, 10.0, 0.4, ""};
  auto ds = MakeMultiView(200, views, 2, 7);
  const auto truth = ds->GroundTruth("view0").value();

  PredeconOptions opts;
  opts.eps = 4.0;
  opts.delta = 1.0;
  opts.kappa = 25.0;
  opts.min_pts = 5;
  PredeconInfo info;
  auto c = RunPredecon(ds->data(), opts, &info);
  ASSERT_TRUE(c.ok());
  ASSERT_GE(c->NumClusters(), 2u);
  EXPECT_GT(BestMatchAccuracy(truth, c->labels).value(), 0.8);
  // Points should prefer the two structured dimensions.
  size_t with_prefs = 0;
  for (size_t p : info.preference_dims) with_prefs += (p >= 2);
  EXPECT_GT(with_prefs, ds->num_objects() / 2);
}

TEST(PredeconTest, BeatsPlainDbscanOnNoisyDims) {
  std::vector<ViewSpec> views(1);
  views[0] = {2, 2, 10.0, 0.4, ""};
  auto ds = MakeMultiView(200, views, 2, 8);
  const auto truth = ds->GroundTruth("view0").value();

  PredeconOptions po;
  po.eps = 4.0;
  po.delta = 1.0;
  po.kappa = 25.0;
  po.min_pts = 5;
  auto pre = RunPredecon(ds->data(), po);
  ASSERT_TRUE(pre.ok());

  DbscanOptions dbo;
  dbo.eps = 4.0;
  dbo.min_pts = 5;
  auto plain = RunDbscan(ds->data(), dbo);
  ASSERT_TRUE(plain.ok());

  const double pre_acc = BestMatchAccuracy(truth, pre->labels).value();
  const double plain_acc = BestMatchAccuracy(truth, plain->labels).value();
  EXPECT_GT(pre_acc, plain_acc);
}

TEST(PredeconTest, WeightedNeighborhoodsAreSubsets) {
  auto ds = MakeUniformCube(80, 3, 9);
  PredeconOptions opts;
  opts.eps = 0.3;
  opts.delta = 0.002;
  opts.kappa = 50.0;
  opts.min_pts = 3;
  auto c = RunPredecon(ds->data(), opts);
  ASSERT_TRUE(c.ok());
  // Sanity only: the run completes and labels are well-formed.
  for (int l : c->labels) EXPECT_GE(l, -1);
}

TEST(PredeconTest, InvalidParameters) {
  PredeconOptions opts;
  opts.eps = 0;
  EXPECT_FALSE(RunPredecon(Matrix(5, 2), opts).ok());
  opts.eps = 1;
  opts.kappa = 0.5;
  EXPECT_FALSE(RunPredecon(Matrix(5, 2), opts).ok());
  EXPECT_FALSE(RunPredecon(Matrix(), PredeconOptions()).ok());
}

// ---------------------------------------------------------------------
// P3C.
TEST(P3cTest, FindsRelevantIntervalsOnPlantedData) {
  std::vector<ViewSpec> views(1);
  views[0] = {2, 2, 10.0, 0.5, ""};
  auto ds = MakeMultiView(300, views, 2, 10);
  P3cOptions opts;
  opts.xi = 8;
  opts.max_dims = 2;
  std::vector<RelevantInterval> intervals;
  auto r = RunP3c(ds->data(), opts, &intervals);
  ASSERT_TRUE(r.ok());
  // Relevant intervals exist in the structured dims {0, 1} and none (or
  // far fewer) in the uniform noise dims {2, 3}.
  size_t structured = 0, noisy = 0;
  for (const auto& iv : intervals) {
    if (iv.dim < 2) {
      ++structured;
    } else {
      ++noisy;
    }
  }
  EXPECT_GE(structured, 2u);
  EXPECT_GT(structured, noisy);
}

TEST(P3cTest, SignaturesMatchPlantedClusters) {
  std::vector<ViewSpec> views(1);
  views[0] = {2, 3, 10.0, 0.5, ""};
  auto ds = MakeMultiView(300, views, 1, 12);
  P3cOptions opts;
  opts.xi = 8;
  opts.max_dims = 2;
  auto r = RunP3c(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  ASSERT_GT(r->clusters.size(), 0u);
  EXPECT_GT(SubspacePairF1(*r, ds->GroundTruth("view0").value()).value(),
            0.4);
}

TEST(P3cTest, UniformDataYieldsNothing) {
  auto ds = MakeUniformCube(300, 3, 12);
  P3cOptions opts;
  opts.xi = 6;
  auto r = RunP3c(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->clusters.size(), 0u);
}

TEST(P3cTest, CoresFeedStatpcSelection) {
  // The tutorial's note (slide 78): STATPC builds on the P3C cluster
  // definition. Feed P3C cores into the STATPC selection end to end.
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 10.0, 0.5, ""};
  views[1] = {2, 2, 10.0, 0.5, ""};
  auto ds = MakeMultiView(300, views, 1, 13);
  P3cOptions p3c;
  p3c.xi = 8;
  p3c.max_dims = 2;
  auto cores = RunP3c(ds->data(), p3c);
  ASSERT_TRUE(cores.ok());
  ASSERT_GT(cores->clusters.size(), 0u);
  StatpcOptions statpc;
  auto selected = RunStatpc(ds->data(), *cores, statpc);
  ASSERT_TRUE(selected.ok());
  EXPECT_LE(selected->clusters.size(), cores->clusters.size());
  EXPECT_GT(selected->clusters.size(), 0u);
}

TEST(P3cTest, InvalidOptions) {
  P3cOptions opts;
  opts.alpha = 0.0;
  EXPECT_FALSE(RunP3c(Matrix(5, 2), opts).ok());
  EXPECT_FALSE(RunP3c(Matrix(), P3cOptions()).ok());
}

}  // namespace
}  // namespace multiclust
