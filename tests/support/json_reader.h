#ifndef MULTICLUST_TESTS_SUPPORT_JSON_READER_H_
#define MULTICLUST_TESTS_SUPPORT_JSON_READER_H_

#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "common/json.h"

namespace multiclust {
namespace test {

/// Shared JSON assertions for the test binaries, built on the library's
/// own strict parser (common/json.h) — the tests validate emitted
/// documents with the exact reader the tooling (bench_diff, report
/// loaders) uses, instead of each test hand-rolling a validator.

/// True when `text` is one complete well-formed JSON document.
inline bool IsValidJson(std::string_view text) {
  return json::Parse(text).ok();
}

/// Parses `text`, registering a test failure (with the parser's byte-offset
/// diagnostic) when it is malformed. Returns null on failure so callers can
/// keep asserting on the result without crashing.
inline json::Value ParseJsonOrFail(std::string_view text) {
  auto parsed = json::Parse(text);
  if (!parsed.ok()) {
    ADD_FAILURE() << "invalid JSON: " << parsed.status().ToString()
                  << "\ndocument: " << std::string(text.substr(0, 400));
    return json::Value::MakeNull();
  }
  return *std::move(parsed);
}

/// Member lookup that registers a test failure when `obj` has no member
/// `key`. Returns a null value on failure.
inline const json::Value& FieldOrFail(const json::Value& obj,
                                      std::string_view key) {
  static const json::Value kNull;
  const json::Value* found = obj.Find(key);
  if (found == nullptr) {
    ADD_FAILURE() << "missing JSON member '" << std::string(key) << "'";
    return kNull;
  }
  return *found;
}

}  // namespace test
}  // namespace multiclust

#endif  // MULTICLUST_TESTS_SUPPORT_JSON_READER_H_
