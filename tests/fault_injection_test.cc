// Recovery-path suite: exercises the run-guard subsystem (budgets,
// cancellation, deterministic retries) and — when fault injection is
// compiled in (the default) — every recovery path the injector can reach:
// poisoned iterations, forced non-convergence, expired deadlines, restart
// skipping, and the discovery pipeline's strategy fallback chain.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "cluster/gmm.h"
#include "cluster/kmeans.h"
#include "common/fault.h"
#include "common/runguard.h"
#include "core/pipeline.h"
#include "data/generators.h"

namespace multiclust {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Reset(); }
  void TearDown() override { fault::Reset(); }
};

Matrix BlobData(uint64_t seed = 21) {
  auto ds = MakeBlobs({{{0, 0}, 0.6, 30}, {{6, 0}, 0.6, 30},
                       {{3, 5}, 0.6, 30}},
                      seed);
  return ds->data();
}

// ---- Budget semantics (no injected faults required) ----------------------

TEST_F(FaultInjectionTest, IterationCapReturnsPartialResult) {
  // Uniform data with k = 5 does not converge in one Lloyd iteration.
  auto ds = MakeUniformCube(200, 4, 3);
  KMeansOptions opts;
  opts.k = 5;
  opts.restarts = 1;
  opts.seed = 5;
  opts.budget.max_iterations = 1;
  auto c = RunKMeans(ds->data(), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->labels.size(), 200u);
  EXPECT_LE(c->iterations, 1u);
  EXPECT_FALSE(c->converged);
}

TEST_F(FaultInjectionTest, ExpiredDeadlineReturnsPartialResult) {
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 3;
  opts.seed = 5;
  opts.budget.deadline_ms = 1e-6;  // expired by the first check
  auto c = RunKMeans(BlobData(), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->labels.size(), 90u);
  EXPECT_FALSE(c->converged);
}

TEST_F(FaultInjectionTest, CancelTokenAbortsWithCancelled) {
  CancelToken cancel;
  cancel.Cancel();
  KMeansOptions opts;
  opts.k = 3;
  opts.budget.cancel = &cancel;
  auto c = RunKMeans(BlobData(), opts);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kCancelled);
}

TEST_F(FaultInjectionTest, CancelIsNeverSwallowedByPipelineFallbacks) {
  CancelToken cancel;
  cancel.Cancel();
  DiscoveryOptions opts;
  opts.k = 2;
  opts.budget.cancel = &cancel;
  auto r = DiscoverMultipleClusterings(BlobData(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST_F(FaultInjectionTest, RetrySeedsAreDeterministicAndDistinct) {
  EXPECT_EQ(RetrySeed(7, 0), 7u);
  EXPECT_EQ(RetrySeed(7, 1), RetrySeed(7, 1));
  EXPECT_NE(RetrySeed(7, 1), 7u);
  EXPECT_NE(RetrySeed(7, 1), RetrySeed(7, 2));
  EXPECT_NE(RetrySeed(7, 1), RetrySeed(8, 1));
}

TEST_F(FaultInjectionTest, CleanPipelineRunIsNotDegraded) {
  DiscoveryOptions opts;
  opts.k = 2;
  opts.seed = 4;
  auto r = DiscoverMultipleClusterings(BlobData(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->degraded);
  EXPECT_TRUE(r->warnings.empty());
  ASSERT_EQ(r->attempts.size(), 1u);
  EXPECT_EQ(r->attempts[0].retries, 0u);
  EXPECT_EQ(r->strategy_name, "dec-kmeans");
}

// ---- Injected faults -----------------------------------------------------

#if defined(MULTICLUST_FAULT_INJECTION)

TEST_F(FaultInjectionTest, InjectedDeadlineStopsRunEarly) {
  fault::Arm({"kmeans", FaultKind::kExpireDeadline, 1, 0});
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 1;
  opts.seed = 5;
  auto c = RunKMeans(BlobData(), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->iterations, 1u);
  EXPECT_FALSE(c->converged);
  EXPECT_GT(fault::TotalFires(), 0u);
}

TEST_F(FaultInjectionTest, PoisonedRestartIsSkippedDeterministically) {
  const Matrix data = BlobData();
  auto run = [&data] {
    // The single armed fire poisons restart 0; restart 1 must win cleanly.
    fault::Reset();
    fault::Arm({"kmeans", FaultKind::kInjectNaN, 0, 1});
    KMeansOptions opts;
    opts.k = 3;
    opts.restarts = 2;
    opts.seed = 5;
    return RunKMeans(data, opts);
  };
  auto first = run();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->converged);
  auto second = run();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->labels, second->labels);
  EXPECT_DOUBLE_EQ(first->quality, second->quality);
}

TEST_F(FaultInjectionTest, GmmRecoversFromPoisonedRestart) {
  fault::Arm({"gmm", FaultKind::kInjectNaN, 0, 1});
  GmmOptions opts;
  opts.k = 3;
  opts.restarts = 2;
  opts.seed = 5;
  auto model = FitGmm(BlobData(), opts);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(std::isfinite(model->log_likelihood));
}

TEST_F(FaultInjectionTest, AllRestartsPoisonedSurfacesComputationError) {
  fault::Arm({"kmeans", FaultKind::kInjectNaN, 0, 0});
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 3;
  auto c = RunKMeans(BlobData(), opts);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kComputationError);
}

TEST_F(FaultInjectionTest, RetryWithReseedRecoversDeterministically) {
  const Matrix data = BlobData();
  RetryPolicy policy;
  policy.max_retries = 2;
  auto attempt_once = [&data, &policy](RunDiagnostics* diag) {
    // One armed fire fails the first attempt entirely (single restart);
    // the SplitMix-reseeded retry runs with the injector exhausted.
    fault::Reset();
    fault::Arm({"kmeans", FaultKind::kInjectNaN, 0, 1});
    return RunWithRetry(
        policy, /*base_seed=*/7,
        [&data](uint64_t seed) {
          KMeansOptions o;
          o.k = 3;
          o.restarts = 1;
          o.seed = seed;
          return RunKMeans(data, o);
        },
        diag);
  };
  RunDiagnostics d1, d2;
  auto r1 = attempt_once(&d1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(d1.retries, 1u);
  auto r2 = attempt_once(&d2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(d2.retries, 1u);
  // Bit-identical recovery: same reseed sequence, same winner.
  EXPECT_EQ(r1->labels, r2->labels);
  EXPECT_DOUBLE_EQ(r1->quality, r2->quality);
}

TEST_F(FaultInjectionTest, RetryExhaustionSurfacesErrorAndDiagnostics) {
  fault::Arm({"kmeans", FaultKind::kInjectNaN, 0, 0});  // every iteration
  RetryPolicy policy;
  policy.max_retries = 1;
  RunDiagnostics diag;
  auto r = RunWithRetry(
      policy, /*base_seed=*/7,
      [](uint64_t seed) {
        KMeansOptions o;
        o.k = 3;
        o.restarts = 1;
        o.seed = seed;
        return RunKMeans(BlobData(), o);
      },
      &diag);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kComputationError);
  EXPECT_EQ(diag.retries, 1u);
  EXPECT_FALSE(diag.note.empty());
}

TEST_F(FaultInjectionTest, ForcedNonConvergenceIsReported) {
  fault::Arm({"kmeans", FaultKind::kForceNonConvergence, 0, 0});
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 1;
  opts.max_iters = 5;
  auto c = RunKMeans(BlobData(), opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->iterations, 5u);
  EXPECT_FALSE(c->converged);
}

TEST_F(FaultInjectionTest, PipelineFallsBackWhenStrategyKeepsFailing) {
  const Matrix data = BlobData();
  auto run = [&data] {
    // dec-kmeans is poisoned on every iteration, so the requested strategy
    // and all its retries fail; meta clustering (whose base k-means runs at
    // the "kmeans" site) must take over.
    fault::Reset();
    fault::Arm({"dec-kmeans", FaultKind::kInjectNaN, 0, 0});
    DiscoveryOptions opts;
    opts.strategy = DiscoveryStrategy::kDecorrelatedKMeans;
    opts.k = 2;
    opts.seed = 4;
    opts.retry.max_retries = 1;
    return DiscoverMultipleClusterings(data, opts);
  };
  auto r = run();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->degraded);
  EXPECT_FALSE(r->warnings.empty());
  EXPECT_GE(r->attempts.size(), 2u);
  EXPECT_EQ(r->strategy_name, "meta-clustering");
  EXPECT_GT(r->solutions.size(), 0u);
  // The whole degradation cascade is deterministic.
  auto again = run();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(r->strategy_name, again->strategy_name);
  EXPECT_EQ(r->solutions.Labels(), again->solutions.Labels());
}

TEST_F(FaultInjectionTest, PipelineWithoutFallbackSurfacesTheError) {
  fault::Arm({"dec-kmeans", FaultKind::kInjectNaN, 0, 0});
  DiscoveryOptions opts;
  opts.strategy = DiscoveryStrategy::kDecorrelatedKMeans;
  opts.k = 2;
  opts.retry.max_retries = 1;
  opts.allow_fallback = false;
  auto r = DiscoverMultipleClusterings(BlobData(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kComputationError);
}

// ---- fault model v2 -------------------------------------------------------

TEST_F(FaultInjectionTest, KindNamesRoundTripThroughParse) {
  for (FaultKind kind :
       {FaultKind::kInjectNaN, FaultKind::kForceNonConvergence,
        FaultKind::kExpireDeadline, FaultKind::kCrash,
        FaultKind::kIoWriteFail, FaultKind::kIoShortWrite,
        FaultKind::kIoFsyncFail, FaultKind::kIoRenameFail,
        FaultKind::kIoTornWrite, FaultKind::kCheckpointCorrupt,
        FaultKind::kAllocFail}) {
    FaultKind parsed;
    ASSERT_TRUE(ParseFaultKind(FaultKindName(kind), &parsed))
        << FaultKindName(kind);
    EXPECT_EQ(parsed, kind);
  }
  FaultKind unused;
  EXPECT_FALSE(ParseFaultKind("no_such_kind", &unused));
}

TEST_F(FaultInjectionTest, TotalFiresIsQueryablePerSite) {
  fault::Arm({"alpha", FaultKind::kInjectNaN, 0, 0});
  fault::Arm({"beta", FaultKind::kInjectNaN, 0, 0});
  EXPECT_TRUE(fault::ShouldFire("alpha", FaultKind::kInjectNaN, 0));
  EXPECT_TRUE(fault::ShouldFire("alpha", FaultKind::kInjectNaN, 1));
  EXPECT_TRUE(fault::ShouldFire("beta", FaultKind::kInjectNaN, 0));
  EXPECT_EQ(fault::TotalFires(), 3u);
  EXPECT_EQ(fault::TotalFires("alpha"), 2u);
  EXPECT_EQ(fault::TotalFires("beta"), 1u);
  EXPECT_EQ(fault::TotalFires("gamma"), 0u);
}

TEST_F(FaultInjectionTest, ProbabilisticSpecFiresReproduciblyPerSeed) {
  auto pattern = [](uint64_t seed) {
    fault::Reset();
    FaultSpec spec;
    spec.site = "p";
    spec.kind = FaultKind::kInjectNaN;
    spec.probability = 0.5;
    spec.seed = seed;
    fault::Arm(spec);
    std::vector<bool> fired;
    for (size_t i = 0; i < 64; ++i) {
      fired.push_back(fault::ShouldFire("p", FaultKind::kInjectNaN, i));
    }
    fault::Reset();
    return fired;
  };
  const std::vector<bool> a = pattern(42);
  EXPECT_EQ(a, pattern(42));  // bit-reproducible per seed
  EXPECT_NE(a, pattern(43));  // and actually seed-dependent
  // p = 0.5 over 64 flips: both outcomes occur (probability ~2^-64 not to).
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST_F(FaultInjectionTest, ProbabilityZeroNeverFiresAndOneAlwaysFires) {
  FaultSpec never;
  never.site = "z";
  never.kind = FaultKind::kInjectNaN;
  never.probability = 0.0;
  fault::Arm(never);
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_FALSE(fault::ShouldFire("z", FaultKind::kInjectNaN, i));
  }
  fault::Reset();
  FaultSpec always;
  always.site = "z";
  always.kind = FaultKind::kInjectNaN;
  always.probability = 1.0;
  fault::Arm(always);
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_TRUE(fault::ShouldFire("z", FaultKind::kInjectNaN, i));
  }
}

// The documented concurrency contract: arming from one thread while
// another is inside its hook-check loop is safe, the new fault becomes
// visible no later than the next check, and a max_fires=1 fault fires on
// exactly one of many racing threads.
TEST_F(FaultInjectionTest, ConcurrentArmAndCheckIsSafe) {
  constexpr int kCheckers = 4;
  constexpr int kChecksPerThread = 2000;
  std::atomic<int> observed_fires{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kCheckers + 1);
  for (int t = 0; t < kCheckers; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kChecksPerThread; ++i) {
        if (fault::ShouldFire("race", FaultKind::kInjectNaN,
                              static_cast<size_t>(i))) {
          observed_fires.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  threads.emplace_back([&] {
    go.store(true, std::memory_order_release);
    for (int i = 0; i < 50; ++i) {
      FaultSpec spec;
      spec.site = i == 25 ? "race" : "elsewhere";
      spec.kind = FaultKind::kInjectNaN;
      spec.max_fires = i == 25 ? 1 : 0;
      fault::Arm(spec);
    }
  });
  for (std::thread& t : threads) t.join();
  // The single-shot "race" fault fired at most once across all racing
  // threads (0 is possible: the checkers may drain before the arm lands).
  EXPECT_LE(observed_fires.load(), 1);
  EXPECT_EQ(fault::TotalFires("race"),
            static_cast<size_t>(observed_fires.load()));
}

TEST_F(FaultInjectionTest, InjectedAllocFailureDegradesToComputationError) {
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 1;
  opts.seed = 5;
  fault::Arm({"kmeans", FaultKind::kAllocFail, 1, 1});
  auto r = RunKMeans(BlobData(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kComputationError);
  EXPECT_NE(r.status().message().find("allocation"), std::string::npos);
  // The pipeline's retry machinery treats it like any recoverable
  // computation fault: a reseeded retry succeeds once the fault is spent.
  fault::Reset();
  fault::Arm({"dec-kmeans", FaultKind::kAllocFail, 0, 1});
  DiscoveryOptions dopts;
  dopts.strategy = DiscoveryStrategy::kDecorrelatedKMeans;
  dopts.k = 2;
  auto report = DiscoverMultipleClusterings(BlobData(), dopts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->solutions.size(), 0u);
}

#endif  // MULTICLUST_FAULT_INJECTION

}  // namespace
}  // namespace multiclust
