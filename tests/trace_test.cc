// Observability suite: span tracer, metrics registry, and the per-run
// ConvergenceTrace. The tracer/metrics tests skip themselves when the
// subsystem is compiled out (-DMULTICLUST_TRACING=OFF); the
// ConvergenceTrace tests always run — convergence telemetry is plain
// diagnostics data, independent of the tracing switch.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "altspace/coala.h"
#include "altspace/dec_kmeans.h"
#include "cluster/gmm.h"
#include "cluster/kmeans.h"
#include "cluster/spectral.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "multiview/co_em.h"
#include "subspace/orclus.h"
#include "subspace/proclus.h"
#include "support/json_reader.h"

namespace multiclust {
namespace {

Matrix TestData(uint64_t seed) {
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 12.0, 0.8, ""};
  views[1] = {2, 2, 8.0, 0.8, ""};
  return MakeMultiView(120, views, 1, seed)->data();
}


// RAII: clean tracer + metrics state per test, disabled on exit so later
// tests are unaffected.
struct TraceSession {
  TraceSession() {
    trace::Reset();
    trace::Enable();
  }
  ~TraceSession() {
    trace::Disable();
    trace::Reset();
  }
};

TEST(TraceTest, SpanNestingAndSummary) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TraceSession session;
  {
    MULTICLUST_TRACE_SPAN("test.outer");
    for (int i = 0; i < 3; ++i) {
      MULTICLUST_TRACE_SPAN("test.inner");
    }
  }
  EXPECT_EQ(trace::EventCount(), 4u);
  const std::vector<trace::SpanStats> summary = trace::Summary();
  ASSERT_EQ(summary.size(), 2u);
  // Sorted by name.
  EXPECT_EQ(summary[0].name, "test.inner");
  EXPECT_EQ(summary[0].count, 3u);
  EXPECT_EQ(summary[1].name, "test.outer");
  EXPECT_EQ(summary[1].count, 1u);
  // The outer span encloses the inner ones.
  EXPECT_GE(summary[1].max_ms, summary[0].max_ms);
  EXPECT_GE(summary[0].total_ms, 0.0);
  const std::string table = trace::SummaryString();
  EXPECT_NE(table.find("test.inner"), std::string::npos);
  EXPECT_NE(table.find("test.outer"), std::string::npos);
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  trace::Reset();
  trace::Disable();
  {
    MULTICLUST_TRACE_SPAN("test.dropped");
  }
  EXPECT_EQ(trace::EventCount(), 0u);
}

TEST(TraceTest, ThreadSafetyUnderParallelFor) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TraceSession session;
  SetThreadCount(4);
  std::vector<double> out(4096);
  ParallelFor(0, out.size(), 64, [&](size_t lo, size_t hi) {
    MULTICLUST_TRACE_SPAN("test.parallel_chunk");
    for (size_t i = lo; i < hi; ++i) out[i] = static_cast<double>(i);
  });
  SetThreadCount(0);
  // 4096 / 64 = 64 chunks, one span each, none lost.
  const std::vector<trace::SpanStats> summary = trace::Summary();
  ASSERT_EQ(summary.size(), 1u);
  EXPECT_EQ(summary[0].name, "test.parallel_chunk");
  EXPECT_EQ(summary[0].count, 64u);
}

TEST(TraceTest, ChromeTraceJsonIsValid) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TraceSession session;
  {
    MULTICLUST_TRACE_SPAN("test.json \"quoted\"\\slash");
    MULTICLUST_TRACE_SPAN("test.json.nested");
  }
  const std::string json = trace::ChromeTraceJson();
  EXPECT_TRUE(test::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("test.json.nested"), std::string::npos);
  // The escaped quote must survive round-tripping into JSON.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST(TraceTest, WriteChromeTraceRoundTrip) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TraceSession session;
  {
    MULTICLUST_TRACE_SPAN("test.file_export");
  }
  const std::string path = ::testing::TempDir() + "trace_test_export.json";
  ASSERT_TRUE(trace::WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content, trace::ChromeTraceJson());
  EXPECT_TRUE(test::IsValidJson(content));
}

TEST(MetricsTest2, CounterGaugeHistogramBasics) {
  if (!metrics::kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  metrics::Reset();
  MC_METRIC_COUNT("test.trace.counter", 2);
  MC_METRIC_COUNT("test.trace.counter", 3);
  EXPECT_EQ(metrics::GetCounter("test.trace.counter").value(), 5u);

  MC_METRIC_GAUGE_SET("test.trace.gauge", 1.5);
  MC_METRIC_GAUGE_SET("test.trace.gauge", 2.5);
  EXPECT_DOUBLE_EQ(metrics::GetGauge("test.trace.gauge").value(), 2.5);

  const std::vector<double> bounds = {1.0, 10.0, 100.0};
  MC_METRIC_OBSERVE("test.trace.histo", bounds, 0.5);    // bucket 0
  MC_METRIC_OBSERVE("test.trace.histo", bounds, 1.0);    // bucket 0 (incl.)
  MC_METRIC_OBSERVE("test.trace.histo", bounds, 7.0);    // bucket 1
  MC_METRIC_OBSERVE("test.trace.histo", bounds, 1e6);    // overflow
  metrics::Histogram& h = metrics::GetHistogram("test.trace.histo", bounds);
  const std::vector<uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.total_count(), 4u);

  const std::string table = metrics::SummaryString();
  EXPECT_NE(table.find("test.trace.counter"), std::string::npos);
  EXPECT_NE(table.find("test.trace.histo"), std::string::npos);

  metrics::Reset();
  EXPECT_EQ(metrics::GetCounter("test.trace.counter").value(), 0u);
  EXPECT_EQ(h.total_count(), 0u);
}

TEST(TraceTest, DroppedEventsAreCountedAndSurfaced) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TraceSession session;
  trace::SetMaxEventsPerThread(4);
  for (int i = 0; i < 10; ++i) {
    MULTICLUST_TRACE_SPAN("test.drop");
  }
  // The first 4 land in the buffer, the remaining 6 are dropped but
  // counted — silent loss would make a truncated trace look complete.
  EXPECT_EQ(trace::EventCount(), 4u);
  EXPECT_EQ(trace::DroppedEvents(), 6u);
  const std::string summary = trace::SummaryString();
  EXPECT_NE(summary.find("trace.dropped_events: 6"), std::string::npos)
      << summary;
  const std::string json = trace::ChromeTraceJson();
  EXPECT_TRUE(test::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"trace.dropped_events\":6"), std::string::npos)
      << json;
  // Reset clears the counter and restores the default cap.
  trace::SetMaxEventsPerThread(size_t{1} << 20);
  trace::Reset();
  EXPECT_EQ(trace::DroppedEvents(), 0u);
  {
    MULTICLUST_TRACE_SPAN("test.drop.after_reset");
  }
  EXPECT_EQ(trace::EventCount(), 1u);
  EXPECT_EQ(trace::DroppedEvents(), 0u);
}

TEST(MetricsTest2, HistogramQuantilePinsInterpolation) {
  if (!metrics::kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  // Hand-checkable fixture: bounds [1, 10], counts [2 in (0,1], 6 in
  // (1,10], 2 overflow], total 10.
  const std::vector<double> bounds = {1.0, 10.0};
  const std::vector<uint64_t> counts = {2, 6, 2};
  // p50: target rank 5 lands in bucket 1 at position (5-2)/6 of (1,10]:
  // 1 + 0.5*9 = 5.5.
  EXPECT_DOUBLE_EQ(metrics::HistogramQuantile(bounds, counts, 0.5), 5.5);
  // p10: rank 1 in bucket 0, interpolated from min(0, bounds[0]) = 0:
  // 0 + (1/2)*1 = 0.5.
  EXPECT_DOUBLE_EQ(metrics::HistogramQuantile(bounds, counts, 0.1), 0.5);
  // p95: rank 9.5 falls in the overflow bucket, which clamps to the last
  // finite bound.
  EXPECT_DOUBLE_EQ(metrics::HistogramQuantile(bounds, counts, 0.95), 10.0);
  // Extremes.
  EXPECT_DOUBLE_EQ(metrics::HistogramQuantile(bounds, counts, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(metrics::HistogramQuantile(bounds, counts, 1.0), 10.0);
  // Empty histogram and mismatched shapes have no quantiles.
  EXPECT_TRUE(std::isnan(metrics::HistogramQuantile(bounds, {0, 0, 0}, 0.5)));
  EXPECT_TRUE(std::isnan(metrics::HistogramQuantile(bounds, {1, 2}, 0.5)));

  // The member form reads the live bucket counts.
  metrics::Reset();
  metrics::Histogram& h = metrics::GetHistogram("test.trace.quantile", bounds);
  for (int i = 0; i < 2; ++i) h.Observe(0.5);
  for (int i = 0; i < 6; ++i) h.Observe(5.0);
  for (int i = 0; i < 2; ++i) h.Observe(100.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.5);
  metrics::Reset();
}

TEST(MetricsTest2, MetricsJsonCarriesQuantiles) {
  if (!metrics::kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  metrics::Reset();
  const std::vector<double> bounds = {1.0, 10.0};
  metrics::Histogram& h = metrics::GetHistogram("test.trace.jsonq", bounds);
  for (int i = 0; i < 10; ++i) h.Observe(5.0);
  const std::string json = metrics::MetricsJson();
  EXPECT_TRUE(test::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"p50\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
  metrics::Reset();
}

TEST(MetricsTest2, OpenMetricsTextWellFormed) {
  if (!metrics::kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  metrics::Reset();
  metrics::GetCounter("test.trace.om_counter").Add(7);
  metrics::GetGauge("test.trace.om_gauge").Set(1.25);
  const std::vector<double> bounds = {1.0, 10.0};
  metrics::Histogram& h = metrics::GetHistogram("test.trace.om_histo", bounds);
  for (int i = 0; i < 4; ++i) h.Observe(5.0);
  const std::string text = metrics::OpenMetricsText();
  // Exposition envelope: ends with the OpenMetrics terminator.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n") << text;
  // Names are prefixed and sanitized ('.' is not a legal name char).
  EXPECT_NE(text.find("# TYPE multiclust_test_trace_om_counter counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("multiclust_test_trace_om_counter_total 7"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("multiclust_test_trace_om_gauge 1.25"),
            std::string::npos)
      << text;
  // Histograms expose cumulative buckets, a count, and quantile gauges.
  EXPECT_NE(text.find("multiclust_test_trace_om_histo_bucket{le=\"+Inf\"} 4"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("multiclust_test_trace_om_histo_count 4"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("multiclust_test_trace_om_histo_p50"),
            std::string::npos)
      << text;
  metrics::Reset();
}

TEST(MetricsTest2, CounterTotalsThreadInvariant) {
  if (!metrics::kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  const Matrix data = TestData(41);
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 3;
  opts.seed = 7;
  std::vector<uint64_t> totals;
  for (const size_t threads : {1u, 4u}) {
    SetThreadCount(threads);
    metrics::Reset();
    ASSERT_TRUE(RunKMeans(data, opts).ok());
    totals.push_back(
        metrics::GetCounter("cluster.kmeans.iterations").value());
    SetThreadCount(0);
  }
  EXPECT_GT(totals[0], 0u);
  EXPECT_EQ(totals[0], totals[1]);
}

TEST(TraceTest, AlgorithmSpansAppearInTrace) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TraceSession session;
  const Matrix data = TestData(42);
  KMeansOptions opts;
  opts.k = 2;
  opts.seed = 7;
  ASSERT_TRUE(RunKMeans(data, opts).ok());
  const std::string json = trace::ChromeTraceJson();
  EXPECT_NE(json.find("cluster.kmeans.run"), std::string::npos);
  EXPECT_NE(json.find("cluster.kmeans.assign"), std::string::npos);
  EXPECT_NE(json.find("cluster.kmeans.update"), std::string::npos);
  EXPECT_TRUE(test::IsValidJson(json));
}

TEST(TraceTest, PipelineStagesAppearInTrace) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TraceSession session;
  const Matrix data = TestData(43);
  DiscoveryOptions opts;
  opts.num_solutions = 2;
  opts.k = 2;
  opts.seed = 7;
  ASSERT_TRUE(DiscoverMultipleClusterings(data, opts).ok());
  const std::string json = trace::ChromeTraceJson();
  EXPECT_NE(json.find("pipeline.run"), std::string::npos);
  EXPECT_NE(json.find("pipeline.strategy.dec-kmeans"), std::string::npos);
  EXPECT_NE(json.find("pipeline.dedup"), std::string::npos);
  EXPECT_NE(json.find("pipeline.objective"), std::string::npos);
  EXPECT_TRUE(test::IsValidJson(json));
}

// --- ConvergenceTrace: always compiled, independent of the tracing
//     switch. Every iterative algorithm must fill a non-empty trace when a
//     diagnostics sink is attached. ---

TEST(ConvergenceTraceTest, KMeans) {
  const Matrix data = TestData(50);
  RunDiagnostics diag;
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 2;
  opts.seed = 7;
  opts.diagnostics = &diag;
  ASSERT_TRUE(RunKMeans(data, opts).ok());
  ASSERT_FALSE(diag.trace.empty());
  EXPECT_EQ(diag.algorithm, "kmeans");
  EXPECT_GT(diag.iterations, 0u);
  // SSE is non-increasing across iterations within one restart.
  const std::vector<ConvergencePoint>& pts = diag.trace.points;
  for (size_t i = 1; i < pts.size(); ++i) {
    if (pts[i].restart != pts[i - 1].restart) continue;
    EXPECT_LE(pts[i].objective, pts[i - 1].objective + 1e-9);
  }
  EXPECT_NE(diag.ToString().find("trace:"), std::string::npos);
}

TEST(ConvergenceTraceTest, Gmm) {
  const Matrix data = TestData(51);
  RunDiagnostics diag;
  GmmOptions opts;
  opts.k = 2;
  opts.restarts = 2;
  opts.seed = 7;
  opts.diagnostics = &diag;
  ASSERT_TRUE(FitGmm(data, opts).ok());
  ASSERT_FALSE(diag.trace.empty());
  EXPECT_EQ(diag.algorithm, "gmm");
  EXPECT_GT(diag.iterations, 0u);
}

TEST(ConvergenceTraceTest, Spectral) {
  const Matrix data = TestData(52);
  RunDiagnostics diag;
  SpectralOptions opts;
  opts.k = 2;
  opts.seed = 7;
  opts.diagnostics = &diag;
  ASSERT_TRUE(RunSpectral(data, opts).ok());
  ASSERT_FALSE(diag.trace.empty());
  EXPECT_EQ(diag.algorithm, "spectral");
}

TEST(ConvergenceTraceTest, DecKMeans) {
  const Matrix data = TestData(53);
  RunDiagnostics diag;
  DecKMeansOptions opts;
  opts.ks = {2, 2};
  opts.restarts = 2;
  opts.seed = 7;
  opts.diagnostics = &diag;
  ASSERT_TRUE(RunDecorrelatedKMeans(data, opts).ok());
  ASSERT_FALSE(diag.trace.empty());
  EXPECT_EQ(diag.algorithm, "dec-kmeans");
}

TEST(ConvergenceTraceTest, Coala) {
  const Matrix data = TestData(54);
  const std::vector<int> given(data.rows(), 0);
  RunDiagnostics diag;
  CoalaOptions opts;
  opts.k = 3;
  opts.diagnostics = &diag;
  ASSERT_TRUE(RunCoala(data, given, opts).ok());
  ASSERT_FALSE(diag.trace.empty());
  EXPECT_EQ(diag.algorithm, "coala");
  EXPECT_TRUE(diag.converged);
}

TEST(ConvergenceTraceTest, CoEm) {
  const Matrix data = TestData(55);
  const Matrix v1 = data.SelectColumns({0, 1});
  const Matrix v2 = data.SelectColumns({2, 3});
  RunDiagnostics diag;
  CoEmOptions opts;
  opts.k = 2;
  opts.seed = 7;
  opts.diagnostics = &diag;
  ASSERT_TRUE(RunCoEm(v1, v2, opts).ok());
  ASSERT_FALSE(diag.trace.empty());
  EXPECT_EQ(diag.algorithm, "co-em");
}

TEST(ConvergenceTraceTest, Orclus) {
  const Matrix data = TestData(56);
  RunDiagnostics diag;
  OrclusOptions opts;
  opts.k = 2;
  opts.l = 2;
  opts.seed = 7;
  opts.diagnostics = &diag;
  ASSERT_TRUE(RunOrclus(data, opts).ok());
  ASSERT_FALSE(diag.trace.empty());
  EXPECT_EQ(diag.algorithm, "orclus");
}

TEST(ConvergenceTraceTest, Proclus) {
  const Matrix data = TestData(57);
  RunDiagnostics diag;
  ProclusOptions opts;
  opts.k = 3;
  opts.seed = 7;
  opts.diagnostics = &diag;
  ASSERT_TRUE(RunProclus(data, opts).ok());
  ASSERT_FALSE(diag.trace.empty());
  EXPECT_EQ(diag.algorithm, "proclus");
}

TEST(ConvergenceTraceTest, PipelineAttemptsCarryTraces) {
  const Matrix data = TestData(58);
  DiscoveryOptions opts;
  opts.num_solutions = 2;
  opts.k = 2;
  opts.seed = 7;
  auto report = DiscoverMultipleClusterings(data, opts);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->attempts.empty());
  const RunDiagnostics& diag = report->attempts.back();
  EXPECT_FALSE(diag.trace.empty());
  EXPECT_EQ(diag.algorithm, report->strategy_name);
}

TEST(ConvergenceTraceTest, NullSinkRecordsNothing) {
  const Matrix data = TestData(59);
  KMeansOptions opts;
  opts.k = 2;
  opts.seed = 7;
  // diagnostics defaults to nullptr; the recorder must be inert.
  ASSERT_TRUE(RunKMeans(data, opts).ok());
  RunDiagnostics diag;
  ConvergenceRecorder recorder(nullptr, nullptr);
  EXPECT_FALSE(recorder.enabled());
  recorder.Record(0, 0, 1.0, 0.5, 0);
  recorder.Finish("noop", 3, true);
  EXPECT_TRUE(diag.trace.empty());
}

}  // namespace
}  // namespace multiclust
