#include <gtest/gtest.h>

#include "core/objectives.h"
#include "core/solution_set.h"
#include "core/taxonomy.h"
#include "data/generators.h"

namespace multiclust {
namespace {

Clustering MakeClustering(std::vector<int> labels, double quality = 0.0) {
  Clustering c;
  c.labels = std::move(labels);
  c.quality = quality;
  c.algorithm = "test";
  return c;
}

TEST(SolutionSetTest, AddAndSize) {
  SolutionSet set;
  EXPECT_TRUE(set.empty());
  ASSERT_TRUE(set.Add(MakeClustering({0, 0, 1, 1})).ok());
  ASSERT_TRUE(set.Add(MakeClustering({0, 1, 0, 1})).ok());
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.at(1).labels, (std::vector<int>{0, 1, 0, 1}));
}

TEST(SolutionSetTest, RejectsMismatchedSizes) {
  SolutionSet set;
  ASSERT_TRUE(set.Add(MakeClustering({0, 1})).ok());
  EXPECT_FALSE(set.Add(MakeClustering({0, 1, 2})).ok());
}

TEST(SolutionSetTest, DiversityExtremes) {
  SolutionSet diverse;
  ASSERT_TRUE(diverse.Add(MakeClustering({0, 0, 1, 1})).ok());
  ASSERT_TRUE(diverse.Add(MakeClustering({0, 1, 0, 1})).ok());
  EXPECT_NEAR(diverse.Diversity().value(), 1.0, 1e-9);

  SolutionSet redundant;
  ASSERT_TRUE(redundant.Add(MakeClustering({0, 0, 1, 1})).ok());
  ASSERT_TRUE(redundant.Add(MakeClustering({1, 1, 0, 0})).ok());
  EXPECT_NEAR(redundant.Diversity().value(), 0.0, 1e-9);
}

TEST(SolutionSetTest, DeduplicateRemovesNearDuplicates) {
  SolutionSet set;
  ASSERT_TRUE(set.Add(MakeClustering({0, 0, 1, 1})).ok());
  ASSERT_TRUE(set.Add(MakeClustering({1, 1, 0, 0})).ok());  // same partition
  ASSERT_TRUE(set.Add(MakeClustering({0, 1, 0, 1})).ok());
  auto removed = set.Deduplicate(0.1);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);
  EXPECT_EQ(set.size(), 2u);
  // Idempotent.
  EXPECT_EQ(set.Deduplicate(0.1).value(), 0u);
}

TEST(SolutionSetTest, SummaryMentionsAlgorithms) {
  SolutionSet set;
  ASSERT_TRUE(set.Add(MakeClustering({0, 1}, 3.5)).ok());
  const std::string s = set.Summary();
  EXPECT_NE(s.find("test"), std::string::npos);
  EXPECT_NE(s.find("k=2"), std::string::npos);
}

TEST(ObjectivesTest, StockQualityFunctions) {
  auto ds = MakeBlobs({{{0, 0}, 0.3, 30}, {{10, 10}, 0.3, 30}}, 1);
  ASSERT_TRUE(ds.ok());
  const auto truth = ds->GroundTruth("labels").value();
  EXPECT_LT(NegativeSseQuality()(ds->data(), truth).value(), 0.0);
  EXPECT_GT(SilhouetteQuality()(ds->data(), truth).value(), 0.8);
  EXPECT_GT(DunnQuality()(ds->data(), truth).value(), 1.0);
}

TEST(ObjectivesTest, StockDissimilarityFunctions) {
  const std::vector<int> a = {0, 0, 1, 1};
  const std::vector<int> b = {0, 1, 0, 1};
  EXPECT_NEAR(NmiDissimilarity()(a, a).value(), 0.0, 1e-12);
  EXPECT_NEAR(NmiDissimilarity()(a, b).value(), 1.0, 1e-12);
  EXPECT_NEAR(AriDissimilarity()(a, a).value(), 0.0, 1e-12);
  EXPECT_GT(ViDissimilarity()(a, b).value(), 0.5);
  EXPECT_NEAR(ViDissimilarity()(a, a).value(), 0.0, 1e-12);
}

TEST(ObjectivesTest, EvaluateObjectiveReport) {
  auto ds = MakeFourSquares(20, 8.0, 0.5, 2);
  ASSERT_TRUE(ds.ok());
  SolutionSet set;
  ASSERT_TRUE(
      set.Add(MakeClustering(ds->GroundTruth("horizontal").value())).ok());
  ASSERT_TRUE(
      set.Add(MakeClustering(ds->GroundTruth("vertical").value())).ok());
  auto report = EvaluateObjective(ds->data(), set, NegativeSseQuality(),
                                  NmiDissimilarity(), 10.0);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->qualities.size(), 2u);
  // The two square splits are orthogonal: dissimilarity ~1.
  EXPECT_GT(report->mean_dissimilarity, 0.95);
  EXPECT_NEAR(report->min_dissimilarity, report->mean_dissimilarity, 1e-9);
  EXPECT_NEAR(report->combined,
              report->mean_quality + 10.0 * report->mean_dissimilarity,
              1e-9);
}

TEST(TaxonomyTest, RegistryCoversAllParadigms) {
  const auto& registry = AlgorithmRegistry();
  EXPECT_GE(registry.size(), 18u);
  bool original = false, transformed = false, subspace = false,
       multisource = false;
  for (const auto& t : registry) {
    switch (t.search_space) {
      case SearchSpace::kOriginalSpace:
        original = true;
        break;
      case SearchSpace::kTransformedSpace:
        transformed = true;
        break;
      case SearchSpace::kSubspaceProjections:
        subspace = true;
        break;
      case SearchSpace::kMultiSource:
        multisource = true;
        break;
    }
  }
  EXPECT_TRUE(original);
  EXPECT_TRUE(transformed);
  EXPECT_TRUE(subspace);
  EXPECT_TRUE(multisource);
}

TEST(TaxonomyTest, TutorialHeadlinersPresent) {
  const auto& registry = AlgorithmRegistry();
  auto has = [&](const std::string& name) {
    for (const auto& t : registry) {
      if (t.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("COALA"));
  EXPECT_TRUE(has("DecorrelatedKMeans"));
  EXPECT_TRUE(has("OrthoProjection"));
  EXPECT_TRUE(has("CLIQUE"));
  EXPECT_TRUE(has("OSCLU"));
  EXPECT_TRUE(has("ASCLU"));
  EXPECT_TRUE(has("CoEM"));
}

TEST(TaxonomyTest, TraitsMatchTutorialTable) {
  // Spot checks against slide 116.
  for (const auto& t : AlgorithmRegistry()) {
    if (t.name == "COALA") {
      EXPECT_EQ(t.search_space, SearchSpace::kOriginalSpace);
      EXPECT_EQ(t.processing, ProcessingMode::kIterative);
      EXPECT_TRUE(t.uses_given_knowledge);
      EXPECT_EQ(t.solutions, SolutionCount::kTwo);
    }
    if (t.name == "DecorrelatedKMeans") {
      EXPECT_EQ(t.processing, ProcessingMode::kSimultaneous);
      EXPECT_FALSE(t.uses_given_knowledge);
      EXPECT_EQ(t.solutions, SolutionCount::kTwoOrMore);
    }
    if (t.name == "CoEM") {
      EXPECT_EQ(t.search_space, SearchSpace::kMultiSource);
      EXPECT_EQ(t.solutions, SolutionCount::kOne);
    }
    if (t.name == "ASCLU") {
      EXPECT_TRUE(t.uses_given_knowledge);
      EXPECT_TRUE(t.models_view_dissimilarity);
    }
  }
}

TEST(TaxonomyTest, RenderedTableContainsRows) {
  const std::string table = RenderTaxonomyTable();
  EXPECT_NE(table.find("COALA"), std::string::npos);
  EXPECT_NE(table.find("simultaneous"), std::string::npos);
  EXPECT_NE(table.find("multi-source"), std::string::npos);
  EXPECT_NE(table.find("exchangeable def."), std::string::npos);
  // One line per algorithm + 2 header lines.
  const size_t lines = std::count(table.begin(), table.end(), '\n');
  EXPECT_EQ(lines, AlgorithmRegistry().size() + 2);
}

TEST(TaxonomyTest, EnumToStringTotal) {
  EXPECT_STREQ(ToString(SearchSpace::kOriginalSpace), "original");
  EXPECT_STREQ(ToString(ProcessingMode::kSimultaneous), "simultaneous");
  EXPECT_STREQ(ToString(SolutionCount::kTwoOrMore), "m >= 2");
}

}  // namespace
}  // namespace multiclust
