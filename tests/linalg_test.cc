#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/decomposition.h"
#include "linalg/matrix.h"
#include "linalg/pca.h"

namespace multiclust {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m.at(i, j) = rng.Gaussian(0.0, 1.0);
  }
  return m;
}

Matrix RandomSpd(size_t n, uint64_t seed) {
  const Matrix a = RandomMatrix(n + 2, n, seed);
  Matrix spd = a.Transpose() * a;
  for (size_t i = 0; i < n; ++i) spd.at(i, i) += 0.5;
  return spd;
}

TEST(MatrixTest, FromRowsAndAccess) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 6.0);
  EXPECT_EQ(m.Row(0), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(m.Col(1), (std::vector<double>{2, 5}));
}

TEST(MatrixTest, IdentityAndDiagonal) {
  const Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i.at(0, 1), 0.0);
  const Matrix d = Matrix::Diagonal({2, 3});
  EXPECT_DOUBLE_EQ(d.at(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d.at(1, 0), 0.0);
}

TEST(MatrixTest, TransposeInvolution) {
  const Matrix m = RandomMatrix(4, 7, 1);
  EXPECT_DOUBLE_EQ(m.Transpose().Transpose().MaxAbsDiff(m), 0.0);
}

TEST(MatrixTest, MultiplyKnown) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyByIdentity) {
  const Matrix m = RandomMatrix(5, 5, 2);
  EXPECT_LT((m * Matrix::Identity(5)).MaxAbsDiff(m), 1e-12);
  EXPECT_LT((Matrix::Identity(5) * m).MaxAbsDiff(m), 1e-12);
}

TEST(MatrixTest, CheckedMultiplyRejectsMismatch) {
  const Matrix a(2, 3), b(4, 2);
  EXPECT_FALSE(Matrix::Multiply(a, b).ok());
  EXPECT_TRUE(Matrix::Multiply(a, Matrix(3, 2)).ok());
}

TEST(MatrixTest, ApplyMatchesMultiply) {
  const Matrix m = RandomMatrix(3, 4, 3);
  const std::vector<double> v = {1, -2, 0.5, 3};
  const std::vector<double> got = m.Apply(v);
  for (size_t i = 0; i < 3; ++i) {
    double expect = 0;
    for (size_t j = 0; j < 4; ++j) expect += m.at(i, j) * v[j];
    EXPECT_NEAR(got[i], expect, 1e-12);
  }
}

TEST(MatrixTest, SelectColumnsAndRows) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  const Matrix cols = m.SelectColumns({2, 0});
  EXPECT_DOUBLE_EQ(cols.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(cols.at(0, 1), 1.0);
  const Matrix rows = m.SelectRows({1});
  EXPECT_EQ(rows.rows(), 1u);
  EXPECT_DOUBLE_EQ(rows.at(0, 1), 5.0);
}

TEST(VectorOpsTest, Basics) {
  EXPECT_DOUBLE_EQ(Dot({1, 2}, {3, 4}), 11.0);
  EXPECT_DOUBLE_EQ(VectorNorm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_EQ(Add({1, 2}, {3, 4}), (std::vector<double>{4, 6}));
  EXPECT_EQ(Subtract({1, 2}, {3, 4}), (std::vector<double>{-2, -2}));
  EXPECT_EQ(Scale({1, 2}, 3), (std::vector<double>{3, 6}));
}

TEST(VectorOpsTest, NormalizedUnitNorm) {
  const std::vector<double> v = Normalized({3, 4});
  EXPECT_NEAR(VectorNorm(v), 1.0, 1e-12);
  // Zero vector is returned unchanged.
  EXPECT_EQ(Normalized({0, 0}), (std::vector<double>{0, 0}));
}

TEST(VectorOpsTest, RowMeanAndCovariance) {
  const Matrix m = Matrix::FromRows({{1, 10}, {3, 20}});
  const std::vector<double> mean = RowMean(m);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 15.0);
  const Matrix cov = Covariance(m);
  EXPECT_DOUBLE_EQ(cov.at(0, 0), 2.0);   // var of {1,3} with n-1
  EXPECT_DOUBLE_EQ(cov.at(1, 1), 50.0);  // var of {10,20}
  EXPECT_DOUBLE_EQ(cov.at(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(cov.at(0, 1), cov.at(1, 0));
}

TEST(EigenTest, DiagonalMatrix) {
  const Matrix d = Matrix::Diagonal({3, 1, 2});
  auto r = EigenSymmetric(d);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->values[0], 3.0, 1e-10);
  EXPECT_NEAR(r->values[1], 2.0, 1e-10);
  EXPECT_NEAR(r->values[2], 1.0, 1e-10);
}

TEST(EigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const Matrix m = Matrix::FromRows({{2, 1}, {1, 2}});
  auto r = EigenSymmetric(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->values[0], 3.0, 1e-10);
  EXPECT_NEAR(r->values[1], 1.0, 1e-10);
}

TEST(EigenTest, RejectsNonSquare) {
  EXPECT_FALSE(EigenSymmetric(Matrix(2, 3)).ok());
}

class EigenPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EigenPropertyTest, ReconstructionAndOrthonormality) {
  const size_t n = GetParam();
  const Matrix a = RandomSpd(n, 100 + n);
  auto r = EigenSymmetric(a);
  ASSERT_TRUE(r.ok());
  // Reconstruction A = V diag V^T.
  Matrix scaled = r->vectors;
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < n; ++i) scaled.at(i, j) *= r->values[j];
  }
  const Matrix rec = scaled * r->vectors.Transpose();
  EXPECT_LT(rec.MaxAbsDiff(a), 1e-8 * (1.0 + a.FrobeniusNorm()));
  // V orthonormal.
  const Matrix vtv = r->vectors.Transpose() * r->vectors;
  EXPECT_LT(vtv.MaxAbsDiff(Matrix::Identity(n)), 1e-9);
  // Sorted descending.
  for (size_t i = 1; i < n; ++i) {
    EXPECT_GE(r->values[i - 1], r->values[i] - 1e-12);
  }
  // SPD => all eigenvalues positive.
  EXPECT_GT(r->values[n - 1], 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

class SvdPropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SvdPropertyTest, ReconstructionAndOrthonormality) {
  const auto [m, n] = GetParam();
  const Matrix a = RandomMatrix(m, n, 7 * m + n);
  auto r = ComputeSvd(a);
  ASSERT_TRUE(r.ok());
  const size_t rank = std::min(m, n);
  ASSERT_EQ(r->sigma.size(), rank);
  // Non-negative, sorted descending.
  for (size_t i = 0; i < rank; ++i) {
    EXPECT_GE(r->sigma[i], 0.0);
    if (i > 0) {
      EXPECT_GE(r->sigma[i - 1], r->sigma[i] - 1e-12);
    }
  }
  // Reconstruction.
  Matrix us = r->u;
  for (size_t j = 0; j < rank; ++j) {
    for (size_t i = 0; i < us.rows(); ++i) us.at(i, j) *= r->sigma[j];
  }
  const Matrix rec = us * r->v.Transpose();
  EXPECT_LT(rec.MaxAbsDiff(a), 1e-8 * (1.0 + a.FrobeniusNorm()));
  // U^T U = I (columns with nonzero sigma).
  const Matrix utu = r->u.Transpose() * r->u;
  for (size_t i = 0; i < rank; ++i) {
    if (r->sigma[i] > 1e-9) {
      EXPECT_NEAR(utu.at(i, i), 1.0, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdPropertyTest,
    ::testing::Values(std::make_pair<size_t, size_t>(3, 3),
                      std::make_pair<size_t, size_t>(5, 2),
                      std::make_pair<size_t, size_t>(2, 5),
                      std::make_pair<size_t, size_t>(8, 8),
                      std::make_pair<size_t, size_t>(10, 4),
                      std::make_pair<size_t, size_t>(4, 10)));

TEST(CholeskyTest, ReconstructsSpd) {
  const Matrix a = RandomSpd(5, 5);
  auto l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  EXPECT_LT((l.value() * l->Transpose()).MaxAbsDiff(a), 1e-9);
  // Lower triangular.
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) EXPECT_DOUBLE_EQ(l->at(i, j), 0.0);
  }
}

TEST(CholeskyTest, RejectsIndefinite) {
  const Matrix m = Matrix::FromRows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky(m).ok());
}

TEST(SolveSpdTest, SolvesKnownSystem) {
  const Matrix a = Matrix::FromRows({{4, 1}, {1, 3}});
  auto x = SolveSpd(a, {1, 2});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(4 * (*x)[0] + (*x)[1], 1.0, 1e-12);
  EXPECT_NEAR((*x)[0] + 3 * (*x)[1], 2.0, 1e-12);
}

TEST(SolveSpdTest, RandomRoundTrip) {
  const Matrix a = RandomSpd(6, 17);
  Rng rng(9);
  std::vector<double> x_true(6);
  for (double& v : x_true) v = rng.Gaussian(0, 1);
  const std::vector<double> b = a.Apply(x_true);
  auto x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-8);
}

TEST(InverseTest, RandomRoundTrip) {
  const Matrix a = RandomSpd(5, 23);
  auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_LT((a * inv.value()).MaxAbsDiff(Matrix::Identity(5)), 1e-8);
}

TEST(InverseTest, RejectsSingular) {
  Matrix m(2, 2);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(1, 0) = 2;
  m.at(1, 1) = 4;
  EXPECT_FALSE(Inverse(m).ok());
}

TEST(SqrtSymmetricTest, SquaresBack) {
  const Matrix a = RandomSpd(4, 31);
  auto s = SqrtSymmetric(a);
  ASSERT_TRUE(s.ok());
  EXPECT_LT((s.value() * s.value()).MaxAbsDiff(a), 1e-8);
}

TEST(InverseSqrtSymmetricTest, WhitensCovariance) {
  const Matrix a = RandomSpd(4, 37);
  auto w = InverseSqrtSymmetric(a);
  ASSERT_TRUE(w.ok());
  // W * A * W = I.
  const Matrix id = w.value() * a * w.value();
  EXPECT_LT(id.MaxAbsDiff(Matrix::Identity(4)), 1e-7);
}

TEST(QrTest, ReconstructionAndTriangularity) {
  const Matrix a = RandomMatrix(7, 4, 41);
  auto qr = ComputeQr(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_LT((qr->q * qr->r).MaxAbsDiff(a), 1e-9);
  const Matrix qtq = qr->q.Transpose() * qr->q;
  EXPECT_LT(qtq.MaxAbsDiff(Matrix::Identity(4)), 1e-9);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < i; ++j) EXPECT_DOUBLE_EQ(qr->r.at(i, j), 0.0);
  }
}

TEST(QrTest, RejectsWide) { EXPECT_FALSE(ComputeQr(Matrix(2, 5)).ok()); }

TEST(PcaTest, RecoversDominantAxis) {
  // Data stretched along (1, 1)/sqrt(2).
  Rng rng(43);
  Matrix data(300, 2);
  for (size_t i = 0; i < 300; ++i) {
    const double t = rng.Gaussian(0, 5);
    const double s = rng.Gaussian(0, 0.5);
    data.at(i, 0) = t + s;
    data.at(i, 1) = t - s;
  }
  auto pca = FitPca(data);
  ASSERT_TRUE(pca.ok());
  EXPECT_GT(pca->eigenvalues[0], pca->eigenvalues[1]);
  const double c0 = std::fabs(pca->components.at(0, 0));
  const double c1 = std::fabs(pca->components.at(1, 0));
  EXPECT_NEAR(c0, 1.0 / std::sqrt(2.0), 0.05);
  EXPECT_NEAR(c1, 1.0 / std::sqrt(2.0), 0.05);
}

TEST(PcaTest, ComponentsForVariance) {
  PcaModel model;
  model.eigenvalues = {8, 1, 1};
  EXPECT_EQ(model.ComponentsForVariance(0.75), 1u);
  EXPECT_EQ(model.ComponentsForVariance(0.95), 3u);
  EXPECT_EQ(model.ComponentsForVariance(0.9), 2u);
}

TEST(PcaTest, ProjectionCentersData) {
  const Matrix data = Matrix::FromRows({{1, 1}, {3, 3}});
  auto pca = FitPca(data);
  ASSERT_TRUE(pca.ok());
  const std::vector<double> p = pca->Project({2, 2}, 2);
  EXPECT_NEAR(p[0], 0.0, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
}

TEST(PcaTest, RejectsEmpty) { EXPECT_FALSE(FitPca(Matrix()).ok()); }

}  // namespace
}  // namespace multiclust
