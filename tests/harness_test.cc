// Bench-harness suite: document schema validation, suite merging and the
// bench_diff comparison engine — the regression gate must fail on real
// regressions (flipped hard checks, shifted deterministic metrics, missing
// entries) and stay quiet on timing drift.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.h"
#include "harness.h"
#include "support/json_reader.h"

namespace multiclust {
namespace {

using bench::DiffBenchDocuments;
using bench::DiffOptions;
using bench::DiffReport;
using bench::Harness;
using bench::ValueOptions;

// A representative harness document: one deterministic scalar, one timing
// scalar, a series, a table, a hard check and a warn check.
std::string MakeDocument(double metric, double timing_ms, bool check_passed) {
  Harness h("bench_unit", "unit-test bench");
  h.Scalar("recovery", metric, ValueOptions::Tolerance(1e-6));
  h.Timing("elapsed", timing_ms);
  bench::Series* s = h.AddSeries("sweep", "x", "y");
  s->Add(1.0, 10.0);
  s->Add(2.0, 20.0);
  bench::Table* t =
      h.AddTable("rows", {"name", "value"}, ValueOptions::Tolerance(1e-6));
  t->Row();
  t->TextCell("alpha");
  t->Cell(metric);
  h.Check("shape_holds", check_passed, "the qualitative claim");
  h.WarnCheck("speedy_enough", true, "host-dependent bar");
  return h.DocumentJson();
}

json::Value ParseDoc(const std::string& doc) {
  return test::ParseJsonOrFail(doc);
}

DiffReport Diff(const std::string& base, const std::string& cur) {
  return DiffBenchDocuments(ParseDoc(base), ParseDoc(cur), DiffOptions());
}

TEST(HarnessTest, DocumentValidatesAgainstSchema) {
  const std::string doc = MakeDocument(0.95, 12.5, true);
  json::Value v = ParseDoc(doc);
  EXPECT_TRUE(bench::ValidateBenchDocument(v).ok());
  EXPECT_EQ(v.GetNumber("schema_version", 0), 1.0);
  EXPECT_EQ(v.GetString("kind", ""), "multiclust.bench");
  EXPECT_EQ(v.GetString("bench", ""), "bench_unit");
}

TEST(HarnessTest, DocumentCarriesHostContext) {
  json::Value v = ParseDoc(MakeDocument(0.95, 12.5, true));
  const json::Value* host = v.Find("host");
  ASSERT_NE(host, nullptr);
  ASSERT_TRUE(host->is_object());
  EXPECT_GE(host->GetNumber("logical_cores", 0.0), 1.0);
  EXPECT_GE(host->GetNumber("threads", 0.0), 1.0);
  EXPECT_FALSE(host->GetString("isa", "").empty());
  EXPECT_FALSE(host->GetString("simd_backend", "").empty());
  EXPECT_EQ(host->GetNumber("double_lanes", 0.0), 4.0);
  EXPECT_EQ(host->GetNumber("float_lanes", 0.0), 8.0);
}

TEST(HarnessTest, HostMismatchWarnsButNeverFails) {
  // Rewrite the current document's host ISA: the diff must warn (timings
  // are not comparable across machines) without reporting a regression.
  std::string cur = MakeDocument(0.95, 12.5, true);
  const std::string base = MakeDocument(0.95, 12.5, true);
  json::Value v = ParseDoc(base);
  const std::string isa = v.Find("host")->GetString("isa", "");
  const std::string needle = "\"isa\":\"" + isa + "\"";
  const size_t pos = cur.find(needle);
  ASSERT_NE(pos, std::string::npos);
  cur.replace(pos, needle.size(), "\"isa\":\"other-machine\"");
  const DiffReport report = Diff(base, cur);
  EXPECT_FALSE(report.failed()) << report.ToString();
  bool warned = false;
  for (const std::string& w : report.warnings) {
    if (w.find("host mismatch") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned) << report.ToString();
}

TEST(HarnessTest, DocumentWithoutHostStillValidates) {
  // v1 documents (before the hardware-context envelope) have no 'host';
  // they must stay valid and diffable, with only a warning.
  std::string base = MakeDocument(0.95, 12.5, true);
  json::Value v = ParseDoc(base);
  ASSERT_NE(v.Find("host"), nullptr);
  const size_t start = base.find("\"host\":");
  ASSERT_NE(start, std::string::npos);
  // The host object has no nested objects: cut through its closing '},'.
  const size_t end = base.find("},", start);
  ASSERT_NE(end, std::string::npos);
  base.erase(start, end - start + 2);
  json::Value stripped = ParseDoc(base);
  EXPECT_EQ(stripped.Find("host"), nullptr);
  EXPECT_TRUE(bench::ValidateBenchDocument(stripped).ok());
  const DiffReport report = Diff(base, MakeDocument(0.95, 12.5, true));
  EXPECT_FALSE(report.failed()) << report.ToString();
}

TEST(HarnessTest, ValidatorRejectsMangledDocuments) {
  // Wrong kind.
  EXPECT_FALSE(bench::ValidateBenchDocument(
                   ParseDoc("{\"schema_version\":1,\"kind\":\"other\"}"))
                   .ok());
  // A scalar with a string value.
  const char* bad =
      "{\"schema_version\":1,\"kind\":\"multiclust.bench\","
      "\"bench\":\"b\",\"title\":\"t\",\"quick\":false,"
      "\"scalars\":[{\"name\":\"x\",\"value\":\"oops\"}],"
      "\"series\":[],\"tables\":[],\"checks\":[]}";
  EXPECT_FALSE(bench::ValidateBenchDocument(ParseDoc(bad)).ok());
}

TEST(HarnessTest, ScalarRegistrationOverwritesByName) {
  Harness h("bench_unit", "t");
  h.Scalar("m", 1.0);
  h.Scalar("m", 2.0);
  EXPECT_EQ(h.ScalarValue("m", 0.0), 2.0);
  EXPECT_EQ(h.ScalarValue("absent", -1.0), -1.0);
}

TEST(HarnessTest, SeriesAndTablePointersSurviveLaterRegistrations) {
  Harness h("bench_unit", "t");
  std::vector<bench::Series*> series;
  for (int i = 0; i < 16; ++i) {
    series.push_back(h.AddSeries("s" + std::to_string(i), "x", "y"));
  }
  // Writing through the first pointer after 15 further registrations used
  // to be a use-after-free (vector reallocation).
  series[0]->Add(1.0, 2.0);
  EXPECT_EQ(series[0]->size(), 1u);
  EXPECT_TRUE(bench::ValidateBenchDocument(ParseDoc(h.DocumentJson())).ok());
}

TEST(HarnessTest, IdenticalDocumentsDiffClean) {
  const std::string doc = MakeDocument(0.95, 12.5, true);
  const DiffReport report = Diff(doc, doc);
  EXPECT_FALSE(report.failed()) << report.ToString();
  EXPECT_TRUE(report.failures.empty());
}

TEST(HarnessTest, FlippedHardCheckIsARegression) {
  const DiffReport report =
      Diff(MakeDocument(0.95, 12.5, true), MakeDocument(0.95, 12.5, false));
  EXPECT_TRUE(report.failed());
}

TEST(HarnessTest, DeterministicScalarDriftIsARegression) {
  const DiffReport report =
      Diff(MakeDocument(0.95, 12.5, true), MakeDocument(0.80, 12.5, true));
  EXPECT_TRUE(report.failed());
}

TEST(HarnessTest, WithinToleranceDriftPasses) {
  const DiffReport report =
      Diff(MakeDocument(0.95, 12.5, true),
           MakeDocument(0.95 + 1e-8, 12.5, true));
  EXPECT_FALSE(report.failed()) << report.ToString();
}

TEST(HarnessTest, TimingDriftOnlyWarns) {
  // 10x slower: far outside the 3x band, still only a warning.
  const DiffReport report =
      Diff(MakeDocument(0.95, 12.5, true), MakeDocument(0.95, 125.0, true));
  EXPECT_FALSE(report.failed()) << report.ToString();
  EXPECT_FALSE(report.warnings.empty());
}

TEST(HarnessTest, MissingScalarIsARegression) {
  Harness h("bench_unit", "unit-test bench");
  h.Timing("elapsed", 12.5);
  const DiffReport report =
      Diff(MakeDocument(0.95, 12.5, true), h.DocumentJson());
  EXPECT_TRUE(report.failed());
}

TEST(HarnessTest, MergedSuiteValidatesAndDiffs) {
  std::vector<json::Value> docs;
  docs.push_back(ParseDoc(MakeDocument(0.95, 12.5, true)));
  const std::string suite = bench::MergeSuiteJson(docs);
  json::Value v = ParseDoc(suite);
  EXPECT_TRUE(bench::ValidateSuiteDocument(v).ok());
  const DiffReport clean = bench::DiffSuites(v, v, DiffOptions());
  EXPECT_FALSE(clean.failed());

  std::vector<json::Value> regressed;
  regressed.push_back(ParseDoc(MakeDocument(0.95, 12.5, false)));
  const DiffReport bad = bench::DiffSuites(
      v, ParseDoc(bench::MergeSuiteJson(regressed)), DiffOptions());
  EXPECT_TRUE(bad.failed());
}

TEST(HarnessTest, QuickFlagMismatchComparesChecksOnly) {
  Harness quick("bench_unit", "unit-test bench");
  // Simulate --quick by building a doc whose quick flag differs: parse and
  // flip is simpler than plumbing argv, so go through ParseArgs.
  int argc = 2;
  char arg0[] = "bench_unit";
  char arg1[] = "--quick";
  char* argv[] = {arg0, arg1, nullptr};
  ASSERT_TRUE(quick.ParseArgs(&argc, argv));
  ASSERT_TRUE(quick.quick());
  quick.Scalar("recovery", 0.5, ValueOptions::Tolerance(1e-6));
  quick.Check("shape_holds", true, "the qualitative claim");
  // Deterministic scalar differs wildly (different workload) but the
  // checks agree: not a regression across quick/full modes.
  const DiffReport report = DiffBenchDocuments(
      ParseDoc(MakeDocument(0.95, 12.5, true)), ParseDoc(quick.DocumentJson()),
      DiffOptions());
  EXPECT_FALSE(report.failed()) << report.ToString();
}

TEST(HarnessTest, ParseArgsCompactsArgvAndKeepsUnknownFlags) {
  Harness h("bench_unit", "t");
  int argc = 4;
  char arg0[] = "bench_unit";
  char arg1[] = "--quick";
  char arg2[] = "--benchmark_filter=BM_KMeans";
  char arg3[] = "--json=/tmp/harness_test_unused.json";
  char* argv[] = {arg0, arg1, arg2, arg3, nullptr};
  ASSERT_TRUE(h.ParseArgs(&argc, argv));
  EXPECT_TRUE(h.quick());
  EXPECT_EQ(h.json_path(), "/tmp/harness_test_unused.json");
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "bench_unit");
  EXPECT_STREQ(argv[1], "--benchmark_filter=BM_KMeans");
}

}  // namespace
}  // namespace multiclust
