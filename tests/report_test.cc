// Report/JSON suite: the dependency-free JSON layer (common/json.h), the
// versioned DiscoveryReport artifact (common/report.h) and the metrics
// export — every document this library writes must parse with its own
// strict reader and carry the schema envelope.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"
#include "common/report.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "support/json_reader.h"

namespace multiclust {
namespace {

Matrix ReportTestData() {
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 12.0, 0.8, ""};
  views[1] = {2, 2, 8.0, 0.8, ""};
  return MakeMultiView(90, views, 0, 7)->data();
}

DiscoveryReport MakeReport() {
  DiscoveryOptions opts;
  opts.num_solutions = 2;
  opts.k = 2;
  opts.seed = 7;
  auto r = DiscoverMultipleClusterings(ReportTestData(), opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *std::move(r);
}

// --- JSON writer / parser fundamentals. ---

TEST(JsonTest, EscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(json::Escape("plain"), "plain");
  EXPECT_EQ(json::Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::Escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json::Escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonTest, FormatDoubleRoundTripsExactly) {
  const double cases[] = {0.0,       1.0,       -1.0,      0.1,
                          1.0 / 3.0, 1e300,     5e-324,    123456.789,
                          -2.5e-7,   3.14159265358979323846};
  for (double v : cases) {
    const std::string s = json::FormatDouble(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  EXPECT_EQ(json::FormatDouble(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(json::FormatDouble(std::numeric_limits<double>::infinity()),
            "null");
}

TEST(JsonTest, WriterParserRoundTrip) {
  json::Writer w;
  w.BeginObject();
  w.Key("name");
  w.String("k\"mea\\ns\n");
  w.Key("values");
  w.BeginArray();
  w.Double(0.1);
  w.Int(-42);
  w.Bool(true);
  w.Null();
  w.BeginObject();
  w.Key("nested");
  w.Uint(1u << 30);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  const std::string doc = std::move(w).str();

  json::Value v = test::ParseJsonOrFail(doc);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.GetString("name", ""), "k\"mea\\ns\n");
  const json::Value& values = test::FieldOrFail(v, "values");
  ASSERT_TRUE(values.is_array());
  ASSERT_EQ(values.size(), 5u);
  EXPECT_EQ(values.array_items()[0].number_value(), 0.1);
  EXPECT_EQ(values.array_items()[1].number_value(), -42.0);
  EXPECT_TRUE(values.array_items()[2].bool_value());
  EXPECT_TRUE(values.array_items()[3].is_null());
  EXPECT_EQ(values.array_items()[4].GetNumber("nested", 0),
            static_cast<double>(1u << 30));

  // Re-serialization is lossless for documents this library writes.
  json::Writer w2;
  json::SerializeValue(v, &w2);
  EXPECT_EQ(std::move(w2).str(), doc);
}

TEST(JsonTest, ParserAcceptsUnicodeEscapes) {
  json::Value v = test::ParseJsonOrFail("{\"s\":\"a\\u0041\\u00e9\"}");
  EXPECT_EQ(v.GetString("s", ""), "aA\xc3\xa9");
}

TEST(JsonTest, ParserRejectsMalformedDocuments) {
  const char* bad[] = {"",          "{",          "[1,]",     "{\"a\":}",
                       "{\"a\" 1}", "tru",        "01",       "1 2",
                       "\"\\q\"",   "{\"a\":1,}", "[1 2]",    "nul",
                       "{1:2}",     "\"unterminated"};
  for (const char* doc : bad) {
    EXPECT_FALSE(json::Parse(doc).ok()) << doc;
  }
}

TEST(JsonTest, DuplicateKeysKeepTheLastValue) {
  json::Value v = test::ParseJsonOrFail("{\"a\":1,\"a\":2}");
  EXPECT_EQ(v.GetNumber("a", 0), 2.0);
}

// --- DiscoveryReport artifact. ---

TEST(ReportTest, DocumentCarriesSchemaEnvelope) {
  const DiscoveryReport report = MakeReport();
  json::Value doc = test::ParseJsonOrFail(DiscoveryReportJson(report));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.GetNumber("schema_version", 0), kReportSchemaVersion);
  EXPECT_EQ(doc.GetString("kind", ""), "multiclust.discovery_report");
  const json::Value& body = test::FieldOrFail(doc, "report");
  EXPECT_EQ(body.GetString("strategy", ""), report.strategy_name);
  EXPECT_EQ(body.GetNumber("chosen_k", 0),
            static_cast<double>(report.chosen_k));
  EXPECT_EQ(body.GetBool("degraded", true), report.degraded);
}

TEST(ReportTest, SolutionsAndObjectiveSurviveRoundTrip) {
  const DiscoveryReport report = MakeReport();
  json::Value doc = test::ParseJsonOrFail(DiscoveryReportJson(report));
  const json::Value& body = test::FieldOrFail(doc, "report");
  const json::Value& solutions = test::FieldOrFail(body, "solutions");
  ASSERT_TRUE(solutions.is_array());
  ASSERT_EQ(solutions.size(), report.solutions.size());
  for (size_t i = 0; i < report.solutions.size(); ++i) {
    const json::Value& s = solutions.array_items()[i];
    EXPECT_EQ(s.GetString("algorithm", ""), report.solutions.at(i).algorithm);
    EXPECT_EQ(s.GetNumber("quality", -99), report.solutions.at(i).quality);
    const json::Value& labels = test::FieldOrFail(s, "labels");
    ASSERT_EQ(labels.size(), report.solutions.at(i).labels.size());
    for (size_t j = 0; j < labels.size(); ++j) {
      EXPECT_EQ(labels.array_items()[j].number_value(),
                report.solutions.at(i).labels[j]);
    }
  }
  const json::Value& objective = test::FieldOrFail(body, "objective");
  EXPECT_EQ(objective.GetNumber("combined", -99), report.objective.combined);
  EXPECT_EQ(objective.GetNumber("mean_dissimilarity", -99),
            report.objective.mean_dissimilarity);
}

TEST(ReportTest, OptionsControlArtifactSize) {
  const DiscoveryReport report = MakeReport();
  ReportJsonOptions compact;
  compact.include_labels = false;
  compact.include_trace_points = false;
  compact.include_metrics = false;
  compact.include_spans = false;
  const std::string small = DiscoveryReportJson(report, compact);
  const std::string full = DiscoveryReportJson(report);
  EXPECT_LT(small.size(), full.size());
  json::Value doc = test::ParseJsonOrFail(small);
  const json::Value& body = test::FieldOrFail(doc, "report");
  const json::Value& solutions = test::FieldOrFail(body, "solutions");
  for (const json::Value& s : solutions.array_items()) {
    EXPECT_EQ(s.Find("labels"), nullptr);
  }
  // Attempt diagnostics stay; only the per-iteration points are dropped.
  const json::Value& attempts = test::FieldOrFail(body, "attempts");
  ASSERT_EQ(attempts.size(), report.attempts.size());
  for (const json::Value& a : attempts.array_items()) {
    const json::Value* trace = a.Find("trace");
    if (trace != nullptr) EXPECT_EQ(trace->Find("points"), nullptr);
  }
}

TEST(ReportTest, WriteDiscoveryReportProducesParseableFile) {
  const DiscoveryReport report = MakeReport();
  const std::string path = ::testing::TempDir() + "report_test_artifact.json";
  ASSERT_TRUE(WriteDiscoveryReport(path, report).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  EXPECT_EQ(content, DiscoveryReportJson(report));
  EXPECT_TRUE(test::IsValidJson(content));
}

TEST(ReportTest, MetricsJsonIsValid) {
  metrics::Reset();
  MC_METRIC_COUNT("report_test.count", 3);
  MC_METRIC_GAUGE_SET("report_test.gauge", 1.5);
  const std::string doc = metrics::MetricsJson();
  json::Value v = test::ParseJsonOrFail(doc);
  ASSERT_TRUE(v.is_array());
  if (metrics::kCompiledIn) {
    bool found = false;
    for (const json::Value& m : v.array_items()) {
      if (m.GetString("name", "") == "report_test.count") found = true;
    }
    EXPECT_TRUE(found) << doc;
  }
  metrics::Reset();
}

}  // namespace
}  // namespace multiclust
