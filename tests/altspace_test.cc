#include <gtest/gtest.h>

#include <algorithm>

#include "altspace/cami.h"
#include "altspace/coala.h"
#include "altspace/dec_kmeans.h"
#include "altspace/meta_clustering.h"
#include "altspace/min_centropy.h"
#include "data/generators.h"
#include "metrics/multi_solution.h"
#include "metrics/partition_similarity.h"

namespace multiclust {
namespace {

// The slide-26 toy: four blobs on a square, two valid 2-partitions.
struct Toy {
  Matrix data;
  std::vector<int> horizontal;
  std::vector<int> vertical;
};

Toy MakeToy(uint64_t seed, size_t per_corner = 30) {
  auto ds = MakeFourSquares(per_corner, 10.0, 0.8, seed);
  Toy t;
  t.data = ds->data();
  t.horizontal = ds->GroundTruth("horizontal").value();
  t.vertical = ds->GroundTruth("vertical").value();
  return t;
}

TEST(MetaClusteringTest, ProducesRequestedGroups) {
  const Toy toy = MakeToy(1);
  MetaClusteringOptions opts;
  opts.num_base = 20;
  opts.k = 2;
  opts.meta_k = 3;
  opts.seed = 1;
  auto r = RunMetaClustering(toy.data, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->base.size(), 20u);
  EXPECT_EQ(r->representatives.size(), 3u);
  EXPECT_EQ(r->group_of_base.size(), 20u);
  EXPECT_EQ(r->dissimilarity.rows(), 20u);
}

TEST(MetaClusteringTest, FindsBothSquareSplits) {
  const Toy toy = MakeToy(2);
  MetaClusteringOptions opts;
  opts.num_base = 40;
  opts.k = 2;
  opts.meta_k = 4;
  opts.feature_weighting = true;
  opts.seed = 2;
  auto r = RunMetaClustering(toy.data, opts);
  ASSERT_TRUE(r.ok());
  auto match = MatchSolutionsToTruths({toy.horizontal, toy.vertical},
                                      r->representatives.Labels());
  ASSERT_TRUE(match.ok());
  // Diversified generation should surface both alternative partitions.
  EXPECT_GT(match->mean_recovery, 0.7);
}

TEST(MetaClusteringTest, RepresentativesMoreDiverseThanBase) {
  const Toy toy = MakeToy(3);
  MetaClusteringOptions opts;
  opts.num_base = 30;
  opts.k = 2;
  opts.meta_k = 3;
  opts.seed = 3;
  auto r = RunMetaClustering(toy.data, opts);
  ASSERT_TRUE(r.ok());
  const double rep_diversity = r->representatives.Diversity().value();
  std::vector<std::vector<int>> base_labels;
  for (const auto& c : r->base) base_labels.push_back(c.labels);
  const double base_diversity =
      MeanPairwiseDissimilarity(base_labels).value();
  EXPECT_GE(rep_diversity, base_diversity - 0.05);
}

TEST(MetaClusteringTest, InvalidOptions) {
  MetaClusteringOptions opts;
  opts.num_base = 1;
  EXPECT_FALSE(RunMetaClustering(Matrix(10, 2), opts).ok());
  opts.num_base = 10;
  opts.meta_k = 20;
  EXPECT_FALSE(RunMetaClustering(Matrix(10, 2), opts).ok());
}

TEST(CoalaTest, AlternativeDiffersFromGiven) {
  const Toy toy = MakeToy(4);
  CoalaOptions opts;
  opts.k = 2;
  opts.w = 0.4;
  CoalaStats stats;
  auto alt = RunCoala(toy.data, toy.horizontal, opts, &stats);
  ASSERT_TRUE(alt.ok());
  EXPECT_EQ(alt->NumClusters(), 2u);
  // The alternative should be the vertical split (or close to it).
  EXPECT_GT(AdjustedRandIndex(alt->labels, toy.vertical).value(), 0.8);
  EXPECT_LT(AdjustedRandIndex(alt->labels, toy.horizontal).value(), 0.2);
  EXPECT_GT(stats.dissimilarity_merges, 0u);
}

TEST(CoalaTest, LargeWIgnoresConstraints) {
  const Toy toy = MakeToy(5);
  CoalaOptions opts;
  opts.k = 2;
  opts.w = 1e6;  // quality merge always wins
  CoalaStats stats;
  auto alt = RunCoala(toy.data, toy.horizontal, opts, &stats);
  ASSERT_TRUE(alt.ok());
  EXPECT_EQ(stats.dissimilarity_merges, 0u);
}

TEST(CoalaTest, NoConstraintsBehavesLikeAverageLink) {
  const Toy toy = MakeToy(6);
  const std::vector<int> no_constraints(toy.data.rows(), -1);
  CoalaOptions opts;
  opts.k = 2;
  opts.w = 0.5;
  auto c = RunCoala(toy.data, no_constraints, opts);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->NumClusters(), 2u);
}

TEST(CoalaTest, InvalidArguments) {
  CoalaOptions opts;
  opts.k = 0;
  EXPECT_FALSE(RunCoala(Matrix(4, 2), {0, 0, 1, 1}, opts).ok());
  opts.k = 2;
  EXPECT_FALSE(RunCoala(Matrix(4, 2), {0, 0, 1}, opts).ok());
  opts.w = 0.0;
  EXPECT_FALSE(RunCoala(Matrix(4, 2), {0, 0, 1, 1}, opts).ok());
}

TEST(DecKMeansTest, RecoversBothSquareSplits) {
  const Toy toy = MakeToy(7, 40);
  DecKMeansOptions opts;
  opts.ks = {2, 2};
  opts.lambda = 4.0;
  opts.restarts = 5;
  opts.seed = 7;
  auto r = RunDecorrelatedKMeans(toy.data, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->solutions.size(), 2u);
  auto match = MatchSolutionsToTruths({toy.horizontal, toy.vertical},
                                      r->solutions.Labels());
  ASSERT_TRUE(match.ok());
  EXPECT_GT(match->mean_recovery, 0.8);
  // The two solutions are strongly dissimilar.
  EXPECT_GT(r->solutions.Diversity().value(), 0.7);
}

TEST(DecKMeansTest, ObjectiveNonIncreasing) {
  const Toy toy = MakeToy(8);
  DecKMeansOptions opts;
  opts.ks = {2, 2};
  opts.lambda = 2.0;
  opts.restarts = 1;
  opts.seed = 8;
  auto r = RunDecorrelatedKMeans(toy.data, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->history.size(), 2u);
  for (size_t i = 1; i < r->history.size(); ++i) {
    EXPECT_LE(r->history[i], r->history[i - 1] * 1.001 + 1e-6)
        << "iteration " << i;
  }
}

TEST(DecKMeansTest, SupportsThreeClusterings) {
  std::vector<ViewSpec> views(3);
  for (auto& v : views) v = {2, 2, 10.0, 0.8, ""};
  auto ds = MakeMultiView(150, views, 0, 9);
  ASSERT_TRUE(ds.ok());
  DecKMeansOptions opts;
  opts.ks = {2, 2, 2};
  opts.lambda = 2.0;
  opts.restarts = 3;
  opts.seed = 9;
  auto r = RunDecorrelatedKMeans(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->solutions.size(), 3u);
}

TEST(DecKMeansTest, LambdaZeroDegeneratesToKMeansPair) {
  const Toy toy = MakeToy(10);
  DecKMeansOptions opts;
  opts.ks = {2, 2};
  opts.lambda = 0.0;
  opts.restarts = 3;
  opts.seed = 10;
  auto r = RunDecorrelatedKMeans(toy.data, opts);
  ASSERT_TRUE(r.ok());
  // Without the penalty both solutions converge to (near-)duplicates of
  // the best k-means solution.
  EXPECT_LT(r->solutions.Diversity().value(), 0.3);
}

TEST(DecKMeansTest, InvalidOptions) {
  DecKMeansOptions opts;
  opts.ks = {2};
  EXPECT_FALSE(RunDecorrelatedKMeans(Matrix(10, 2), opts).ok());
  opts.ks = {2, 0};
  EXPECT_FALSE(RunDecorrelatedKMeans(Matrix(10, 2), opts).ok());
  opts.ks = {2, 2};
  opts.lambda = -1;
  EXPECT_FALSE(RunDecorrelatedKMeans(Matrix(10, 2), opts).ok());
}

TEST(CamiTest, TwoDissimilarMixtures) {
  const Toy toy = MakeToy(11, 40);
  CamiOptions opts;
  opts.k1 = 2;
  opts.k2 = 2;
  opts.mu = 200.0;
  opts.restarts = 6;
  opts.seed = 11;
  auto r = RunCami(toy.data, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->solutions.size(), 2u);
  EXPECT_GT(r->solutions.Diversity().value(), 0.5);
  auto match = MatchSolutionsToTruths({toy.horizontal, toy.vertical},
                                      r->solutions.Labels());
  ASSERT_TRUE(match.ok());
  EXPECT_GT(match->mean_recovery, 0.6);
}

TEST(CamiTest, OverlapSymmetricAndBounded) {
  const Toy toy = MakeToy(12);
  CamiOptions opts;
  opts.seed = 12;
  auto r = RunCami(toy.data, opts);
  ASSERT_TRUE(r.ok());
  const double o12 = CamiOverlap(r->model1, r->model2);
  const double o21 = CamiOverlap(r->model2, r->model1);
  EXPECT_NEAR(o12, o21, 1e-9);
  EXPECT_GE(o12, 0.0);
  EXPECT_LE(o12, 1.0 + 1e-9);
}

TEST(CamiTest, HigherMuLowersOverlap) {
  const Toy toy = MakeToy(13, 40);
  CamiOptions weak;
  weak.mu = 0.0;
  weak.restarts = 2;
  weak.seed = 13;
  CamiOptions strong = weak;
  strong.mu = 200.0;
  auto r_weak = RunCami(toy.data, weak);
  auto r_strong = RunCami(toy.data, strong);
  ASSERT_TRUE(r_weak.ok() && r_strong.ok());
  EXPECT_LE(r_strong->overlap, r_weak->overlap + 0.05);
}

TEST(MinCEntropyTest, AlternativeAvoidsGiven) {
  const Toy toy = MakeToy(14, 40);
  MinCEntropyOptions opts;
  opts.k = 2;
  opts.lambda = 2.0;
  opts.seed = 14;
  auto alt = RunMinCEntropy(toy.data, {toy.horizontal}, opts);
  ASSERT_TRUE(alt.ok());
  EXPECT_EQ(alt->NumClusters(), 2u);
  const double to_given =
      NormalizedMutualInformation(alt->labels, toy.horizontal).value();
  const double to_alt =
      NormalizedMutualInformation(alt->labels, toy.vertical).value();
  EXPECT_GT(to_alt, to_given);
  EXPECT_GT(to_alt, 0.6);
}

TEST(MinCEntropyTest, NoGivenActsAsKernelClustering) {
  const Toy toy = MakeToy(15);
  MinCEntropyOptions opts;
  opts.k = 4;
  opts.lambda = 1.0;
  opts.seed = 15;
  auto c = RunMinCEntropy(toy.data, {}, opts);
  ASSERT_TRUE(c.ok());
  EXPECT_GE(c->NumClusters(), 3u);
}

TEST(MinCEntropyTest, SupportsMultipleGivenClusterings) {
  const Toy toy = MakeToy(16, 40);
  MinCEntropyOptions opts;
  opts.k = 2;
  opts.lambda = 3.0;
  opts.seed = 16;
  auto alt = RunMinCEntropy(toy.data, {toy.horizontal, toy.vertical}, opts);
  ASSERT_TRUE(alt.ok());
  // Penalised against both axis splits, the result should align with
  // neither strongly.
  EXPECT_LT(
      NormalizedMutualInformation(alt->labels, toy.horizontal).value(), 0.7);
  EXPECT_LT(
      NormalizedMutualInformation(alt->labels, toy.vertical).value(), 0.7);
}

TEST(MinCEntropyTest, InvalidArguments) {
  MinCEntropyOptions opts;
  opts.k = 0;
  EXPECT_FALSE(RunMinCEntropy(Matrix(4, 2), {}, opts).ok());
  opts.k = 2;
  EXPECT_FALSE(RunMinCEntropy(Matrix(4, 2), {{0, 1}}, opts).ok());
}

}  // namespace
}  // namespace multiclust
