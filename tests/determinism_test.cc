// Determinism suite: every randomised algorithm in the library takes an
// explicit seed and must be bit-reproducible — identical labels on
// identical inputs. This is what makes the experiment harness and the
// regression tests trustworthy.
#include <gtest/gtest.h>

#include "altspace/cami.h"
#include "altspace/cib.h"
#include "cluster/dbscan.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "stats/hsic.h"
#include "subspace/enclus.h"
#include "altspace/conditional_ensemble.h"
#include "altspace/dec_kmeans.h"
#include "altspace/disparate.h"
#include "altspace/meta_clustering.h"
#include "altspace/min_centropy.h"
#include "cluster/gmm.h"
#include "cluster/kmeans.h"
#include "cluster/spectral.h"
#include "core/pipeline.h"
#include "data/discrete.h"
#include "data/generators.h"
#include "multiview/co_em.h"
#include "multiview/consensus.h"
#include "subspace/doc.h"
#include "subspace/msc.h"
#include "subspace/orclus.h"
#include "subspace/proclus.h"

namespace multiclust {
namespace {

Matrix TestData(uint64_t seed) {
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 12.0, 0.8, ""};
  views[1] = {2, 2, 8.0, 0.8, ""};
  return MakeMultiView(120, views, 1, seed)->data();
}

TEST(DeterminismTest, KMeans) {
  const Matrix data = TestData(1);
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 4;
  opts.seed = 99;
  EXPECT_EQ(RunKMeans(data, opts)->labels, RunKMeans(data, opts)->labels);
}

TEST(DeterminismTest, Gmm) {
  const Matrix data = TestData(2);
  GmmOptions opts;
  opts.k = 3;
  opts.restarts = 2;
  opts.seed = 99;
  EXPECT_EQ(RunGmm(data, opts)->labels, RunGmm(data, opts)->labels);
}

TEST(DeterminismTest, Spectral) {
  const Matrix data = TestData(3);
  SpectralOptions opts;
  opts.k = 2;
  opts.seed = 99;
  EXPECT_EQ(RunSpectral(data, opts)->labels,
            RunSpectral(data, opts)->labels);
}

TEST(DeterminismTest, DecKMeans) {
  const Matrix data = TestData(4);
  DecKMeansOptions opts;
  opts.ks = {2, 2};
  opts.restarts = 2;
  opts.seed = 99;
  auto a = RunDecorrelatedKMeans(data, opts);
  auto b = RunDecorrelatedKMeans(data, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->solutions.at(0).labels, b->solutions.at(0).labels);
  EXPECT_EQ(a->solutions.at(1).labels, b->solutions.at(1).labels);
  EXPECT_DOUBLE_EQ(a->objective, b->objective);
}

TEST(DeterminismTest, Cami) {
  const Matrix data = TestData(5);
  CamiOptions opts;
  opts.restarts = 2;
  opts.seed = 99;
  auto a = RunCami(data, opts);
  auto b = RunCami(data, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->solutions.at(0).labels, b->solutions.at(0).labels);
  EXPECT_DOUBLE_EQ(a->objective, b->objective);
}

TEST(DeterminismTest, MinCEntropy) {
  const Matrix data = TestData(6);
  const std::vector<int> given(data.rows(), 0);
  MinCEntropyOptions opts;
  opts.k = 2;
  opts.seed = 99;
  EXPECT_EQ(RunMinCEntropy(data, {given}, opts)->labels,
            RunMinCEntropy(data, {given}, opts)->labels);
}

TEST(DeterminismTest, MetaClustering) {
  const Matrix data = TestData(7);
  MetaClusteringOptions opts;
  opts.num_base = 10;
  opts.k = 2;
  opts.meta_k = 3;
  opts.seed = 99;
  auto a = RunMetaClustering(data, opts);
  auto b = RunMetaClustering(data, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->group_of_base, b->group_of_base);
  ASSERT_EQ(a->representatives.size(), b->representatives.size());
  for (size_t i = 0; i < a->representatives.size(); ++i) {
    EXPECT_EQ(a->representatives.at(i).labels,
              b->representatives.at(i).labels);
  }
}

TEST(DeterminismTest, Cib) {
  DocumentTermSpec spec;
  spec.num_documents = 80;
  spec.seed = 8;
  auto ds = MakeDocumentTerm(spec);
  const auto known = ds->GroundTruth("topicsA").value();
  CibOptions opts;
  opts.k = 2;
  opts.restarts = 2;
  opts.seed = 99;
  EXPECT_EQ(RunCib(ds->data(), known, opts)->clustering.labels,
            RunCib(ds->data(), known, opts)->clustering.labels);
}

TEST(DeterminismTest, Disparate) {
  const Matrix data = TestData(9);
  DisparateOptions opts;
  opts.restarts = 2;
  opts.seed = 99;
  auto a = RunDisparateClustering(data, opts);
  auto b = RunDisparateClustering(data, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->solutions.at(0).labels, b->solutions.at(0).labels);
  EXPECT_EQ(a->solutions.at(1).labels, b->solutions.at(1).labels);
}

TEST(DeterminismTest, ConditionalEnsemble) {
  const Matrix data = TestData(10);
  const std::vector<int> given(data.rows(), 0);
  ConditionalEnsembleOptions opts;
  opts.k = 2;
  opts.ensemble_size = 8;
  opts.seed = 99;
  EXPECT_EQ(RunConditionalEnsemble(data, given, opts)->clustering.labels,
            RunConditionalEnsemble(data, given, opts)->clustering.labels);
}

TEST(DeterminismTest, Proclus) {
  const Matrix data = TestData(11);
  ProclusOptions opts;
  opts.k = 3;
  opts.seed = 99;
  EXPECT_EQ(RunProclus(data, opts)->clustering.labels,
            RunProclus(data, opts)->clustering.labels);
}

TEST(DeterminismTest, Doc) {
  const Matrix data = TestData(12);
  DocOptions opts;
  opts.k = 2;
  opts.w = 2.0;
  opts.seed = 99;
  auto a = RunDoc(data, opts);
  auto b = RunDoc(data, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->clusters.size(), b->clusters.size());
  for (size_t i = 0; i < a->clusters.size(); ++i) {
    EXPECT_EQ(a->clusters[i].objects, b->clusters[i].objects);
    EXPECT_EQ(a->clusters[i].dims, b->clusters[i].dims);
  }
}

TEST(DeterminismTest, Orclus) {
  const Matrix data = TestData(13);
  OrclusOptions opts;
  opts.k = 2;
  opts.l = 2;
  opts.seed = 99;
  EXPECT_EQ(RunOrclus(data, opts)->clustering.labels,
            RunOrclus(data, opts)->clustering.labels);
}

TEST(DeterminismTest, Msc) {
  const Matrix data = TestData(14);
  MscOptions opts;
  opts.num_views = 2;
  opts.k = 2;
  opts.seed = 99;
  auto a = RunMultipleSpectralViews(data, opts);
  auto b = RunMultipleSpectralViews(data, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->views.size(), b->views.size());
  for (size_t v = 0; v < a->views.size(); ++v) {
    EXPECT_EQ(a->views[v].dims, b->views[v].dims);
    EXPECT_EQ(a->views[v].clustering.labels, b->views[v].clustering.labels);
  }
}

TEST(DeterminismTest, CoEm) {
  const Matrix data = TestData(15);
  const Matrix v1 = data.SelectColumns({0, 1});
  const Matrix v2 = data.SelectColumns({2, 3});
  CoEmOptions opts;
  opts.k = 2;
  opts.seed = 99;
  EXPECT_EQ(RunCoEm(v1, v2, opts)->consensus.labels,
            RunCoEm(v1, v2, opts)->consensus.labels);
}

TEST(DeterminismTest, Consensus) {
  const Matrix data = TestData(16);
  ConsensusOptions opts;
  opts.ensemble_size = 4;
  opts.k_member = 2;
  opts.k_final = 2;
  opts.seed = 99;
  EXPECT_EQ(RunEnsembleConsensus(data, opts)->consensus.labels,
            RunEnsembleConsensus(data, opts)->consensus.labels);
}

TEST(DeterminismTest, Pipeline) {
  const Matrix data = TestData(17);
  DiscoveryOptions opts;
  opts.num_solutions = 2;
  opts.k = 2;
  opts.seed = 99;
  auto a = DiscoverMultipleClusterings(data, opts);
  auto b = DiscoverMultipleClusterings(data, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->solutions.size(), b->solutions.size());
  for (size_t i = 0; i < a->solutions.size(); ++i) {
    EXPECT_EQ(a->solutions.at(i).labels, b->solutions.at(i).labels);
  }
}

// Runs `fn` with an explicit pool size, restoring the default afterwards.
template <typename Fn>
auto WithThreads(size_t threads, Fn fn) {
  SetThreadCount(threads);
  auto result = fn();
  SetThreadCount(0);
  return result;
}

// The parallelized kernels promise bit-identical output for every thread
// count (deterministic chunked reduction, fixed chunk boundaries). These
// tests pin that guarantee with exact comparisons — EXPECT_EQ on doubles
// is intentional.

TEST(ThreadInvarianceTest, KMeansLabelsAndObjective) {
  // Large enough that assignment, D^2 updates and the SSE reduction all
  // span multiple chunks.
  std::vector<ViewSpec> views(2);
  views[0] = {3, 4, 10.0, 1.0, ""};
  views[1] = {3, 4, 10.0, 1.0, ""};
  const Matrix data = MakeMultiView(3000, views, 0, 21)->data();
  KMeansOptions opts;
  opts.k = 4;
  opts.restarts = 2;
  opts.seed = 7;
  const auto run = [&] { return RunKMeans(data, opts).value(); };
  const Clustering serial = WithThreads(1, run);
  for (const size_t threads : {2u, 4u}) {
    const Clustering parallel = WithThreads(threads, run);
    EXPECT_EQ(serial.labels, parallel.labels) << "threads=" << threads;
    EXPECT_EQ(serial.quality, parallel.quality) << "threads=" << threads;
    EXPECT_EQ(serial.centroids.MaxAbsDiff(parallel.centroids), 0.0);
  }
}

TEST(ThreadInvarianceTest, DbscanBruteForceAndIndexed) {
  std::vector<ViewSpec> views(1);
  views[0] = {3, 3, 6.0, 0.9, ""};
  const Matrix data = MakeMultiView(900, views, 0, 22)->data();
  for (const bool use_index : {false, true}) {
    DbscanOptions opts;
    opts.eps = 1.5;
    opts.min_pts = 4;
    opts.use_index = use_index;
    const auto run = [&] { return RunDbscan(data, opts).value(); };
    const Clustering serial = WithThreads(1, run);
    for (const size_t threads : {2u, 4u}) {
      EXPECT_EQ(serial.labels, WithThreads(threads, run).labels)
          << "use_index=" << use_index << " threads=" << threads;
    }
  }
}

TEST(ThreadInvarianceTest, SpectralLabels) {
  const Matrix data = TestData(31);
  SpectralOptions opts;
  opts.k = 2;
  opts.seed = 7;
  const auto run = [&] { return RunSpectral(data, opts).value(); };
  const Clustering serial = WithThreads(1, run);
  for (const size_t threads : {2u, 4u}) {
    const Clustering parallel = WithThreads(threads, run);
    EXPECT_EQ(serial.labels, parallel.labels) << "threads=" << threads;
    EXPECT_EQ(serial.quality, parallel.quality) << "threads=" << threads;
  }
}

TEST(ThreadInvarianceTest, MatmulCovarianceKernel) {
  Rng rng(5);
  Matrix a(700, 9);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) a.at(i, j) = rng.Gaussian(0, 3);
  }
  const Matrix b = a.Transpose();
  const auto product = [&] { return b * a; };
  const auto covariance = [&] { return Covariance(a); };
  const Matrix prod1 = WithThreads(1, product);
  const Matrix cov1 = WithThreads(1, covariance);
  for (const size_t threads : {2u, 4u}) {
    EXPECT_EQ(prod1.MaxAbsDiff(WithThreads(threads, product)), 0.0);
    EXPECT_EQ(cov1.MaxAbsDiff(WithThreads(threads, covariance)), 0.0);
  }
}

TEST(ThreadInvarianceTest, AffinityAndHsic) {
  const Matrix data = TestData(32);
  const Matrix x = data.SelectColumns({0, 1});
  const Matrix y = data.SelectColumns({2, 3});
  const auto kernel = [&] { return GaussianKernelMatrix(data, 0.0); };
  const auto hsic = [&] { return Hsic(x, y).value(); };
  const Matrix k1 = WithThreads(1, kernel);
  const double h1 = WithThreads(1, hsic);
  for (const size_t threads : {2u, 4u}) {
    EXPECT_EQ(k1.MaxAbsDiff(WithThreads(threads, kernel)), 0.0);
    EXPECT_EQ(h1, WithThreads(threads, hsic));
  }
}

TEST(ThreadInvarianceTest, EnclusSubspaces) {
  const Matrix data = TestData(33);
  EnclusOptions opts;
  opts.xi = 6;
  opts.omega = 6.0;
  opts.max_dims = 3;
  const auto run = [&] { return RunEnclus(data, opts).value(); };
  const std::vector<ScoredSubspace> serial = WithThreads(1, run);
  for (const size_t threads : {2u, 4u}) {
    const std::vector<ScoredSubspace> parallel = WithThreads(threads, run);
    ASSERT_EQ(serial.size(), parallel.size()) << "threads=" << threads;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].dims, parallel[i].dims);
      EXPECT_EQ(serial[i].entropy, parallel[i].entropy);
      EXPECT_EQ(serial[i].interest, parallel[i].interest);
    }
  }
}

// Field-by-field trace comparison. budget_remaining_ms is wall-clock
// dependent and deliberately excluded.
void ExpectSameTrace(const ConvergenceTrace& a, const ConvergenceTrace& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.winning_restart, b.winning_restart);
  for (size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].restart, b.points[i].restart) << "point " << i;
    EXPECT_EQ(a.points[i].iteration, b.points[i].iteration) << "point " << i;
    EXPECT_EQ(a.points[i].objective, b.points[i].objective) << "point " << i;
    EXPECT_EQ(a.points[i].delta, b.points[i].delta) << "point " << i;
    EXPECT_EQ(a.points[i].reseeds, b.points[i].reseeds) << "point " << i;
  }
}

TEST(DeterminismTest, KMeansConvergenceTrace) {
  const Matrix data = TestData(21);
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 3;
  opts.seed = 99;
  RunDiagnostics da, db;
  opts.diagnostics = &da;
  ASSERT_TRUE(RunKMeans(data, opts).ok());
  opts.diagnostics = &db;
  ASSERT_TRUE(RunKMeans(data, opts).ok());
  ASSERT_FALSE(da.trace.empty());
  ExpectSameTrace(da.trace, db.trace);
}

TEST(DeterminismTest, GmmConvergenceTrace) {
  const Matrix data = TestData(22);
  GmmOptions opts;
  opts.k = 2;
  opts.restarts = 2;
  opts.seed = 99;
  RunDiagnostics da, db;
  opts.diagnostics = &da;
  ASSERT_TRUE(RunGmm(data, opts).ok());
  opts.diagnostics = &db;
  ASSERT_TRUE(RunGmm(data, opts).ok());
  ASSERT_FALSE(da.trace.empty());
  ExpectSameTrace(da.trace, db.trace);
}

TEST(ThreadInvarianceTest, KMeansConvergenceTrace) {
  // The recorded objectives/deltas come from deterministic chunked
  // reductions, so the trace must be bit-identical at any thread count.
  const Matrix data = TestData(23);
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 2;
  opts.seed = 99;
  const auto run = [&] {
    RunDiagnostics diag;
    opts.diagnostics = &diag;
    EXPECT_TRUE(RunKMeans(data, opts).ok());
    return diag;
  };
  const RunDiagnostics serial = WithThreads(1, run);
  ASSERT_FALSE(serial.trace.empty());
  for (const size_t threads : {2u, 4u}) {
    const RunDiagnostics parallel = WithThreads(threads, run);
    ExpectSameTrace(serial.trace, parallel.trace);
  }
}

// --- SIMD backend invariance. -------------------------------------------
//
// The kernel layer promises bit-identical results whether it was compiled
// with intrinsics (-DMULTICLUST_SIMD=ON) or with the portable scalar
// backend: both share one fixed 4-lane/8-lane reduction order and never
// fuse multiply-add. `kernels::ref` is the forced-scalar instantiation of
// the same templates, so comparing fast vs ref *in process* pins exactly
// what a separate SIMD-OFF build would produce. Every kernel call being
// bit-identical makes whole algorithm trajectories (labels, objectives,
// traces) identical by induction. EXPECT_EQ on doubles is intentional.

TEST(SimdInvarianceTest, KMeansAssignmentMatchesScalarBackend) {
  std::vector<ViewSpec> views(2);
  views[0] = {3, 4, 10.0, 1.0, ""};
  views[1] = {2, 3, 8.0, 1.0, ""};  // 7 columns total: exercises the tail
  const Matrix data = MakeMultiView(500, views, 0, 41)->data();
  KMeansOptions opts;
  opts.k = 4;
  opts.seed = 7;
  const Clustering result = RunKMeans(data, opts).value();
  const Matrix& centers = result.centroids;
  const size_t d = data.cols();
  const size_t k = centers.rows();
  std::vector<double> cn(k), cn_ref(k);
  for (size_t c = 0; c < k; ++c) {
    cn[c] = kernels::SquaredNorm(centers.row_data(c), d);
    cn_ref[c] = kernels::ref::SquaredNorm(centers.row_data(c), d);
    ASSERT_EQ(cn[c], cn_ref[c]) << "center " << c;
  }
  const double* centers_flat = centers.row_data(0);
  for (size_t i = 0; i < data.rows(); ++i) {
    const double* row = data.row_data(i);
    const double xn = kernels::SquaredNorm(row, d);
    ASSERT_EQ(xn, kernels::ref::SquaredNorm(row, d)) << "point " << i;
    const size_t fast =
        kernels::NearestNormForm(row, centers_flat, k, d, xn, cn.data());
    const size_t ref = kernels::ref::NearestNormForm(row, centers_flat, k, d,
                                                     xn, cn_ref.data());
    ASSERT_EQ(fast, ref) << "point " << i;
    ASSERT_EQ(kernels::SquaredDistance(row, centers.row_data(fast), d),
              kernels::ref::SquaredDistance(row, centers.row_data(fast), d))
        << "point " << i;
  }
}

TEST(SimdInvarianceTest, MatmulMatchesScalarBackend) {
  // Matrix::operator* routes through the blocked fast GemmRows; the ref
  // instantiation must reproduce it bit-for-bit at blocking-relevant sizes
  // (crosses the 512-column and 64-k panel boundaries).
  Rng rng(6);
  Matrix a(37, 130), b(130, 600);
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j) a.at(i, j) = rng.Gaussian(0, 2);
  for (size_t i = 0; i < b.rows(); ++i)
    for (size_t j = 0; j < b.cols(); ++j) b.at(i, j) = rng.Gaussian(0, 2);
  const Matrix fast = a * b;
  Matrix ref(a.rows(), b.cols());  // zero-filled; GemmRows accumulates
  kernels::ref::GemmRows(a.row_data(0), a.cols(), b.row_data(0), b.cols(),
                         ref.row_data(0), 0, a.rows());
  EXPECT_EQ(fast.MaxAbsDiff(ref), 0.0);
}

TEST(SimdInvarianceTest, GaussianKernelMatchesScalarBackend) {
  const Matrix data = TestData(42);
  const double gamma = 0.5;
  const Matrix k = GaussianKernelMatrix(data, gamma);
  const size_t n = data.rows();
  std::vector<double> row(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    kernels::ref::GaussianRow(data.row_data(i), data.row_data(i + 1),
                              n - i - 1, data.cols(), gamma, row.data());
    for (size_t j = i + 1; j < n; ++j) {
      ASSERT_EQ(k.at(i, j), row[j - i - 1]) << "entry (" << i << "," << j
                                            << ")";
    }
  }
}

// --- Float32 assignment path. -------------------------------------------

TEST(DeterminismTest, KMeansFloat32) {
  const Matrix data = TestData(43);
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 3;
  opts.seed = 99;
  opts.assign_float32 = true;
  const auto a = RunKMeans(data, opts).value();
  const auto b = RunKMeans(data, opts).value();
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.quality, b.quality);
  EXPECT_EQ(a.centroids.MaxAbsDiff(b.centroids), 0.0);
}

TEST(ThreadInvarianceTest, KMeansFloat32LabelsAndObjective) {
  // The f32 assignment sweep and D^2 scans use the same fixed-boundary
  // chunking as the f64 path; updates/objective stay f64. Labels and the
  // objective must be bit-identical at any thread count.
  std::vector<ViewSpec> views(2);
  views[0] = {3, 4, 10.0, 1.0, ""};
  views[1] = {3, 4, 10.0, 1.0, ""};
  const Matrix data = MakeMultiView(3000, views, 0, 44)->data();
  KMeansOptions opts;
  opts.k = 4;
  opts.restarts = 2;
  opts.seed = 7;
  opts.assign_float32 = true;
  const auto run = [&] { return RunKMeans(data, opts).value(); };
  const Clustering serial = WithThreads(1, run);
  for (const size_t threads : {2u, 4u}) {
    const Clustering parallel = WithThreads(threads, run);
    EXPECT_EQ(serial.labels, parallel.labels) << "threads=" << threads;
    EXPECT_EQ(serial.quality, parallel.quality) << "threads=" << threads;
    EXPECT_EQ(serial.centroids.MaxAbsDiff(parallel.centroids), 0.0);
  }
}

TEST(DeterminismTest, SeedsActuallyMatter) {
  // Sanity counterpart: different seeds should (generically) change the
  // random restarts' trajectory. Use meta clustering, whose output is
  // highly seed-dependent by construction.
  const Matrix data = TestData(18);
  MetaClusteringOptions opts;
  opts.num_base = 8;
  opts.k = 2;
  opts.meta_k = 4;
  opts.seed = 1;
  auto a = RunMetaClustering(data, opts);
  opts.seed = 2;
  auto b = RunMetaClustering(data, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_difference = false;
  for (size_t i = 0; i < a->base.size(); ++i) {
    if (a->base[i].labels != b->base[i].labels) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace multiclust
