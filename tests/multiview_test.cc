#include <gtest/gtest.h>

#include "cluster/gmm.h"
#include "common/rng.h"
#include "data/generators.h"
#include "metrics/clustering_quality.h"
#include "metrics/partition_similarity.h"
#include "multiview/co_em.h"
#include "multiview/consensus.h"
#include "multiview/mv_dbscan.h"
#include "multiview/random_projection.h"

namespace multiclust {
namespace {

// Two views agreeing on ONE underlying clustering (the co-training
// assumption): both views are generated from the same assignment.
struct ConsistentViews {
  Matrix view1;
  Matrix view2;
  std::vector<int> truth;
};

ConsistentViews MakeConsistentViews(uint64_t seed, size_t n = 150) {
  Rng rng(seed);
  ConsistentViews v;
  v.view1 = Matrix(n, 2);
  v.view2 = Matrix(n, 2);
  v.truth.resize(n);
  const double centers1[3][2] = {{0, 0}, {8, 0}, {0, 8}};
  const double centers2[3][2] = {{5, 5}, {-5, 5}, {0, -6}};
  for (size_t i = 0; i < n; ++i) {
    const size_t c = rng.NextIndex(3);
    v.truth[i] = static_cast<int>(c);
    for (size_t j = 0; j < 2; ++j) {
      v.view1.at(i, j) = rng.Gaussian(centers1[c][j], 0.8);
      v.view2.at(i, j) = rng.Gaussian(centers2[c][j], 0.8);
    }
  }
  return v;
}

TEST(LabelAgreementTest, PermutedLabelsAgreeFully) {
  EXPECT_DOUBLE_EQ(LabelAgreement({0, 0, 1, 1}, {1, 1, 0, 0}).value(), 1.0);
  EXPECT_NEAR(LabelAgreement({0, 0, 1, 1}, {0, 1, 1, 1}).value(), 0.75,
              1e-12);
}

TEST(CoEmTest, RecoversSharedClustering) {
  const ConsistentViews v = MakeConsistentViews(1);
  CoEmOptions opts;
  opts.k = 3;
  opts.seed = 1;
  auto r = RunCoEm(v.view1, v.view2, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(AdjustedRandIndex(r->consensus.labels, v.truth).value(), 0.9);
  EXPECT_GT(r->agreement, 0.9);
}

TEST(CoEmTest, ViewsConvergeToAgreement) {
  const ConsistentViews v = MakeConsistentViews(2);
  CoEmOptions opts;
  opts.k = 3;
  opts.seed = 2;
  auto r = RunCoEm(v.view1, v.view2, opts);
  ASSERT_TRUE(r.ok());
  // Per-view hard labelings agree (up to matching).
  EXPECT_GT(LabelAgreement(r->labels_view1, r->labels_view2).value(), 0.85);
}

TEST(CoEmTest, TerminatesOnInconsistentViews) {
  // Independent views: co-EM may oscillate (slide 104); the patience
  // criterion must still terminate it.
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 10.0, 0.8, ""};
  views[1] = {2, 2, 10.0, 0.8, ""};
  auto ds = MakeMultiView(120, views, 0, 3);
  ASSERT_TRUE(ds.ok());
  const Matrix v1 = ds->data().SelectColumns({0, 1});
  const Matrix v2 = ds->data().SelectColumns({2, 3});
  CoEmOptions opts;
  opts.k = 2;
  opts.max_iters = 40;
  opts.seed = 3;
  auto r = RunCoEm(v1, v2, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->iterations, 40u);
}

TEST(CoEmTest, RejectsUnpairedViews) {
  CoEmOptions opts;
  EXPECT_FALSE(RunCoEm(Matrix(3, 2), Matrix(4, 2), opts).ok());
}

TEST(MvDbscanTest, UnionHelpsSparseViews) {
  // Each view only sees half of the cluster structure clearly; the union
  // connects them.
  const ConsistentViews v = MakeConsistentViews(4, 120);
  MvDbscanOptions opts;
  opts.eps = {1.6, 1.6};
  opts.min_pts = 4;
  opts.combination = ViewCombination::kUnion;
  auto r = RunMvDbscan({v.view1, v.view2}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(AdjustedRandIndex(r->labels, v.truth).value(), 0.8);
}

TEST(MvDbscanTest, IntersectionIsStricter) {
  const ConsistentViews v = MakeConsistentViews(5, 120);
  MvDbscanOptions base;
  base.eps = {2.0, 2.0};
  base.min_pts = 4;
  base.combination = ViewCombination::kUnion;
  MvDbscanOptions strict = base;
  strict.combination = ViewCombination::kIntersection;
  auto r_union = RunMvDbscan({v.view1, v.view2}, base);
  auto r_inter = RunMvDbscan({v.view1, v.view2}, strict);
  ASSERT_TRUE(r_union.ok() && r_inter.ok());
  // Intersection can only shrink neighbourhoods: noise never decreases.
  EXPECT_GE(NoiseFraction(r_inter->labels),
            NoiseFraction(r_union->labels) - 1e-12);
}

TEST(MvDbscanTest, IntersectionPurifiesUnreliableViews) {
  // Corrupt view2 for some objects; intersection rejects pairs that only
  // look close in one view.
  ConsistentViews v = MakeConsistentViews(6, 120);
  Rng rng(6);
  for (size_t i = 0; i < 30; ++i) {
    const size_t idx = rng.NextIndex(120);
    v.view2.at(idx, 0) += rng.Gaussian(0, 10);
    v.view2.at(idx, 1) += rng.Gaussian(0, 10);
  }
  MvDbscanOptions opts;
  opts.eps = {1.6, 1.6};
  opts.min_pts = 4;
  opts.combination = ViewCombination::kIntersection;
  auto r = RunMvDbscan({v.view1, v.view2}, opts);
  ASSERT_TRUE(r.ok());
  // Clusters found must be pure w.r.t. truth.
  double purity = BestMatchAccuracy(v.truth, r->labels).value();
  EXPECT_GT(purity, 0.6);
}

TEST(MvDbscanTest, SingleViewEqualsPlainDbscan) {
  const ConsistentViews v = MakeConsistentViews(7, 80);
  MvDbscanOptions opts;
  opts.eps = {1.5};
  opts.min_pts = 4;
  auto r = RunMvDbscan({v.view1}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(AdjustedRandIndex(r->labels, v.truth).value(), 0.8);
}

TEST(MvDbscanTest, InvalidInputs) {
  MvDbscanOptions opts;
  EXPECT_FALSE(RunMvDbscan({}, opts).ok());
  opts.eps = {1.0};
  EXPECT_FALSE(RunMvDbscan({Matrix(3, 1), Matrix(3, 1)}, opts).ok());
  opts.eps = {1.0, 1.0};
  EXPECT_FALSE(RunMvDbscan({Matrix(3, 1), Matrix(4, 1)}, opts).ok());
}

TEST(RandomProjectionTest, ShapeAndDeterminism) {
  auto p1 = RandomProjectionMatrix(10, 3, 42);
  auto p2 = RandomProjectionMatrix(10, 3, 42);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1->rows(), 3u);
  EXPECT_EQ(p1->cols(), 10u);
  EXPECT_DOUBLE_EQ(p1->MaxAbsDiff(*p2), 0.0);
  EXPECT_FALSE(RandomProjectionMatrix(0, 3, 1).ok());
}

TEST(RandomProjectionTest, ApproximatelyPreservesDistances) {
  auto ds = MakeUniformCube(50, 40, 8);
  ASSERT_TRUE(ds.ok());
  auto proj = RandomProject(ds->data(), 25, 8);
  ASSERT_TRUE(proj.ok());
  // Average distortion of pairwise squared distances is bounded.
  double ratio_sum = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = i + 1; j < 20; ++j) {
      const double orig = SquaredDistance(ds->data().Row(i),
                                          ds->data().Row(j));
      const double red = SquaredDistance(proj->Row(i), proj->Row(j));
      if (orig > 1e-12) {
        ratio_sum += red / orig;
        ++pairs;
      }
    }
  }
  EXPECT_NEAR(ratio_sum / pairs, 1.0, 0.35);
}

TEST(ConsensusTest, StabilisesSingleSolution) {
  auto ds = MakeBlobs({{{0, 0, 0, 0}, 0.7, 50},
                       {{8, 8, 0, 0}, 0.7, 50},
                       {{0, 8, 8, 0}, 0.7, 50}},
                      9);
  ASSERT_TRUE(ds.ok());
  ConsensusOptions opts;
  opts.ensemble_size = 8;
  opts.projection_dims = 2;
  opts.k_member = 3;
  opts.k_final = 3;
  opts.seed = 9;
  auto r = RunEnsembleConsensus(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->member_labels.size(), 8u);
  EXPECT_GT(
      AdjustedRandIndex(r->consensus.labels, ds->GroundTruth("labels").value())
          .value(),
      0.8);
  EXPECT_GT(r->anmi, 0.3);
}

TEST(ConsensusTest, CoassociationIsProbability) {
  auto ds = MakeBlobs({{{0, 0}, 0.5, 30}, {{8, 8}, 0.5, 30}}, 10);
  ConsensusOptions opts;
  opts.ensemble_size = 4;
  opts.projection_dims = 2;
  opts.k_member = 2;
  opts.k_final = 2;
  opts.seed = 10;
  auto r = RunEnsembleConsensus(ds->data(), opts);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < r->coassociation.rows(); ++i) {
    for (size_t j = 0; j < r->coassociation.cols(); ++j) {
      EXPECT_GE(r->coassociation.at(i, j), -1e-9);
      EXPECT_LE(r->coassociation.at(i, j), 1.0 + 1e-9);
      EXPECT_NEAR(r->coassociation.at(i, j), r->coassociation.at(j, i),
                  1e-9);
    }
  }
}

TEST(ConsensusTest, AverageNmiHelper) {
  const std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_NEAR(AverageNmi(labels, {{0, 0, 1, 1}, {1, 1, 0, 0}}).value(), 1.0,
              1e-9);
  EXPECT_DOUBLE_EQ(AverageNmi(labels, {}).value(), 0.0);
}

TEST(ConsensusTest, InvalidOptions) {
  ConsensusOptions opts;
  opts.ensemble_size = 0;
  EXPECT_FALSE(RunEnsembleConsensus(Matrix(10, 3), opts).ok());
  opts.ensemble_size = 2;
  opts.k_final = 0;
  EXPECT_FALSE(RunEnsembleConsensus(Matrix(10, 3), opts).ok());
}

}  // namespace
}  // namespace multiclust
