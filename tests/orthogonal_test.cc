#include <gtest/gtest.h>

#include <cmath>

#include "cluster/kmeans.h"
#include "data/generators.h"
#include "linalg/decomposition.h"
#include "metrics/multi_solution.h"
#include "metrics/partition_similarity.h"
#include "orthogonal/alt_transform.h"
#include "orthogonal/metric_learning.h"
#include "orthogonal/ortho_projection.h"
#include "orthogonal/residual_transform.h"

namespace multiclust {
namespace {

// Two-view data: dims {0,1} carry view A (2 clusters), dims {2,3} carry
// view B (2 clusters), independently assigned.
struct TwoViewData {
  Matrix data;
  std::vector<int> view_a;
  std::vector<int> view_b;
};

TwoViewData MakeTwoView(uint64_t seed, size_t n = 160) {
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 12.0, 0.8, "a"};
  views[1] = {2, 2, 12.0, 0.8, "b"};
  auto ds = MakeMultiView(n, views, 0, seed);
  TwoViewData t;
  t.data = ds->data();
  t.view_a = ds->GroundTruth("a").value();
  t.view_b = ds->GroundTruth("b").value();
  return t;
}

TEST(MetricLearningTest, ScatterMatricesDecompose) {
  auto ds = MakeBlobs({{{0, 0}, 0.5, 50}, {{8, 0}, 0.5, 50}}, 1);
  ASSERT_TRUE(ds.ok());
  const auto truth = ds->GroundTruth("labels").value();
  auto sw = WithinClusterScatter(ds->data(), truth);
  auto sb = BetweenClusterScatter(ds->data(), truth);
  ASSERT_TRUE(sw.ok() && sb.ok());
  // Total scatter = within + between (biased covariance).
  Matrix total = Covariance(ds->data()) *
                 (static_cast<double>(ds->num_objects() - 1) /
                  static_cast<double>(ds->num_objects()));
  EXPECT_LT((sw.value() + sb.value()).MaxAbsDiff(total), 1e-8);
  // Separation lives along x: between-scatter dominated by (0, 0) entry.
  EXPECT_GT(sb->at(0, 0), 10.0);
  EXPECT_LT(sb->at(1, 1), 1.0);
}

TEST(MetricLearningTest, WhiteningCollapsesWithinScatter) {
  auto ds = MakeBlobs({{{0, 0}, 1.0, 60}, {{10, 0}, 1.0, 60}}, 2);
  const auto truth = ds->GroundTruth("labels").value();
  auto d = LearnWhiteningTransform(ds->data(), truth);
  ASSERT_TRUE(d.ok());
  const Matrix transformed = TransformRows(ds->data(), *d);
  auto sw = WithinClusterScatter(transformed, truth);
  ASSERT_TRUE(sw.ok());
  // Whitened within-scatter ~ identity.
  EXPECT_LT(sw->MaxAbsDiff(Matrix::Identity(2)), 0.3);
}

TEST(MetricLearningTest, AllNoiseRejected) {
  EXPECT_FALSE(
      WithinClusterScatter(Matrix(3, 2), {-1, -1, -1}).ok());
}

TEST(InvertStretchTest, TutorialSlide51Example) {
  // D = [[1.5, -1], [-1, 1]]; the tutorial gives M ≈ [[2, 2], [2, 3]]
  // (scaled): inverting the singular values swaps stretched and shrunk
  // directions.
  const Matrix d = Matrix::FromRows({{1.5, -1.0}, {-1.0, 1.0}});
  auto m = InvertStretch(d);
  ASSERT_TRUE(m.ok());
  // Verify via SVD structure: M must have reciprocal singular values.
  auto svd_d = ComputeSvd(d);
  auto svd_m = ComputeSvd(*m);
  ASSERT_TRUE(svd_d.ok() && svd_m.ok());
  EXPECT_NEAR(svd_m->sigma[0], 1.0 / svd_d->sigma[1], 1e-9);
  EXPECT_NEAR(svd_m->sigma[1], 1.0 / svd_d->sigma[0], 1e-9);
}

TEST(InvertStretchTest, IdentityIsFixedPoint) {
  auto m = InvertStretch(Matrix::Identity(3));
  ASSERT_TRUE(m.ok());
  EXPECT_LT(m->MaxAbsDiff(Matrix::Identity(3)), 1e-9);
}

TEST(InvertStretchTest, RejectsNonSquare) {
  EXPECT_FALSE(InvertStretch(Matrix(2, 3)).ok());
}

TEST(AltTransformTest, FindsAlternativeView) {
  const TwoViewData t = MakeTwoView(3);
  KMeansOptions km;
  km.k = 2;
  km.restarts = 5;
  km.seed = 3;
  KMeansClusterer clusterer(km);
  auto r = RunAltTransform(t.data, t.view_a, &clusterer);
  ASSERT_TRUE(r.ok());
  const double to_given =
      NormalizedMutualInformation(r->clustering.labels, t.view_a).value();
  const double to_alternative =
      NormalizedMutualInformation(r->clustering.labels, t.view_b).value();
  EXPECT_GT(to_alternative, to_given);
  EXPECT_GT(to_alternative, 0.6);
}

TEST(AltTransformTest, NullClustererRejected) {
  EXPECT_FALSE(RunAltTransform(Matrix(4, 2), {0, 0, 1, 1}, nullptr).ok());
}

TEST(ResidualTransformTest, ClosedFormFindsAlternative) {
  const TwoViewData t = MakeTwoView(4);
  KMeansOptions km;
  km.k = 2;
  km.restarts = 5;
  km.seed = 4;
  KMeansClusterer clusterer(km);
  auto r = RunResidualTransform(t.data, t.view_a, &clusterer);
  ASSERT_TRUE(r.ok());
  const double to_given =
      NormalizedMutualInformation(r->clustering.labels, t.view_a).value();
  const double to_alternative =
      NormalizedMutualInformation(r->clustering.labels, t.view_b).value();
  EXPECT_GT(to_alternative, to_given);
}

TEST(ResidualTransformTest, TransformIsSymmetric) {
  const TwoViewData t = MakeTwoView(5);
  auto m = ResidualTransform(t.data, t.view_a);
  ASSERT_TRUE(m.ok());
  EXPECT_LT(m->MaxAbsDiff(m->Transpose()), 1e-9);
}

TEST(ResidualTransformTest, RequiresClusters) {
  EXPECT_FALSE(
      ResidualTransform(Matrix(3, 2), {-1, -1, -1}).ok());
  EXPECT_FALSE(ResidualTransform(Matrix(3, 2), {0, 0}).ok());
}

TEST(OrthogonalProjectorTest, ProjectorProperties) {
  // Basis = first two axes of R^4.
  Matrix a(4, 2);
  a.at(0, 0) = 1;
  a.at(1, 1) = 1;
  auto m = OrthogonalProjector(a);
  ASSERT_TRUE(m.ok());
  // Idempotent: M^2 = M.
  EXPECT_LT((m.value() * m.value()).MaxAbsDiff(*m), 1e-9);
  // Annihilates the basis: M * A = 0.
  const Matrix ma = *m * a;
  EXPECT_LT(ma.FrobeniusNorm(), 1e-9);
  // Keeps the complement.
  std::vector<double> e3 = {0, 0, 1, 0};
  const std::vector<double> kept = m->Apply(e3);
  EXPECT_NEAR(kept[2], 1.0, 1e-9);
}

TEST(OrthogonalProjectorTest, RejectsEmptyBasis) {
  EXPECT_FALSE(OrthogonalProjector(Matrix()).ok());
}

TEST(OrthoProjectionTest, RecoversBothViews) {
  const TwoViewData t = MakeTwoView(6, 200);
  KMeansOptions km;
  km.k = 2;
  km.restarts = 5;
  km.seed = 6;
  KMeansClusterer clusterer(km);
  OrthoProjectionOptions opts;
  opts.max_views = 2;
  auto r = RunOrthoProjection(t.data, &clusterer, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->views.size(), 2u);
  auto match = MatchSolutionsToTruths({t.view_a, t.view_b},
                                      r->solutions.Labels());
  ASSERT_TRUE(match.ok());
  EXPECT_GT(match->mean_recovery, 0.8);
  // Residual variance decreases across iterations.
  EXPECT_LT(r->views[1].residual_variance,
            r->views[0].residual_variance + 1e-9);
}

TEST(OrthoProjectionTest, StopsWhenVarianceExhausted) {
  // Effectively 1-D structured data: after removing the first view's
  // subspace nothing remains.
  auto ds = MakeBlobs({{{0.0, 0.0}, 0.05, 60}, {{10.0, 0.0}, 0.05, 60}}, 7);
  KMeansOptions km;
  km.k = 2;
  km.seed = 7;
  KMeansClusterer clusterer(km);
  OrthoProjectionOptions opts;
  opts.max_views = 5;
  opts.min_residual_variance = 0.05;
  auto r = RunOrthoProjection(ds->data(), &clusterer, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->views.size(), 5u);
}

TEST(OrthoProjectionTest, NullClustererRejected) {
  OrthoProjectionOptions opts;
  EXPECT_FALSE(RunOrthoProjection(Matrix(4, 2), nullptr, opts).ok());
}

}  // namespace
}  // namespace multiclust
