// chaos_runner: randomized fault-schedule campaigns against the multiclust
// algorithms (see DESIGN.md "Fault model v2 & chaos testing").
//
//   chaos_runner --seeds=200                 soak: 200 generated schedules
//   chaos_runner --seeds=200 --quick         CI-sized datasets
//   chaos_runner --seed=7 --workload=gmm     one generated schedule, printed
//   chaos_runner --replay=repro.json         re-run a saved schedule
//   chaos_runner --schedule='{...}'          re-run an inline schedule
//   chaos_runner --out=DIR                   write violation repros to DIR
//
// Exit codes: 0 = all invariants held, 1 = violations (repros printed as
// re-runnable schedule JSON), 2 = usage error or fault injection compiled
// out.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/chaos.h"
#include "common/fault.h"
#include "common/status.h"

namespace {

using multiclust::Status;
using multiclust::StatusCode;
namespace chaos = multiclust::chaos;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seeds=N] [--seed=BASE] [--quick] [--workload=NAME]\n"
      "          [--no-shrink] [--out=DIR]\n"
      "       %s --replay=PATH | --schedule=JSON\n",
      argv0, argv0);
  return 2;
}

bool ParseSizeFlag(const char* arg, const char* name, size_t* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg + n + 1, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<size_t>(v);
  return true;
}

std::optional<std::string> StringFlag(const char* arg, const char* name) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return std::nullopt;
  return std::string(arg + n + 1);
}

void PrintViolations(const std::vector<chaos::Violation>& violations) {
  for (const chaos::Violation& v : violations) {
    std::fprintf(stderr, "  [%s] %s\n", v.invariant.c_str(),
                 v.detail.c_str());
  }
}

// Runs one explicit schedule (replay / inline). Exit 0 or 1.
int RunOne(const chaos::RunConfig& config) {
  auto outcome = chaos::RunSchedule(config);
  if (!outcome.ok()) {
    std::fprintf(stderr, "chaos_runner: %s\n",
                 outcome.status().ToString().c_str());
    return outcome.status().code() == StatusCode::kUnimplemented ? 2 : 1;
  }
  std::printf("workload=%s status=%s fires=%zu resumes=%zu snapshots=%zu\n",
              config.workload.c_str(), outcome->status.ToString().c_str(),
              outcome->fault_fires, outcome->resume_cycles,
              outcome->snapshots_written);
  if (outcome->violations.empty()) {
    std::printf("OK: all invariants held\n");
    return 0;
  }
  std::fprintf(stderr, "VIOLATIONS:\n");
  PrintViolations(outcome->violations);
  return 1;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content << "\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  size_t seeds = 0;
  size_t base_seed = 1;
  bool quick = false;
  bool shrink = true;
  std::string workload;
  std::string out_dir;
  std::string schedule_json;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseSizeFlag(arg, "--seeds", &seeds)) continue;
    if (ParseSizeFlag(arg, "--seed", &base_seed)) continue;
    if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
      continue;
    }
    if (std::strcmp(arg, "--no-shrink") == 0) {
      shrink = false;
      continue;
    }
    if (auto v = StringFlag(arg, "--workload")) {
      workload = *v;
      continue;
    }
    if (auto v = StringFlag(arg, "--out")) {
      out_dir = *v;
      continue;
    }
    if (auto v = StringFlag(arg, "--schedule")) {
      schedule_json = *v;
      continue;
    }
    if (auto v = StringFlag(arg, "--replay")) {
      std::ifstream in(*v, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "chaos_runner: cannot read %s\n", v->c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      schedule_json = std::move(buf).str();
      continue;
    }
    std::fprintf(stderr, "chaos_runner: unknown flag %s\n", arg);
    return Usage(argv[0]);
  }

#if !defined(MULTICLUST_FAULT_INJECTION)
  std::fprintf(stderr,
               "chaos_runner: fault injection compiled out; rebuild with "
               "-DMULTICLUST_FAULT_INJECTION=ON\n");
  return 2;
#endif

  if (!schedule_json.empty()) {
    auto config = chaos::ParseRunConfigJson(schedule_json);
    if (!config.ok()) {
      std::fprintf(stderr, "chaos_runner: bad schedule: %s\n",
                   config.status().ToString().c_str());
      return 2;
    }
    return RunOne(*config);
  }

  if (seeds == 0) {
    // Single generated schedule: print it, then run it.
    chaos::RunConfig config = chaos::GenerateConfig(
        base_seed, quick,
        workload.empty() ? std::vector<std::string>{}
                         : std::vector<std::string>{workload});
    std::printf("schedule: %s\n", chaos::RunConfigToJson(config).c_str());
    return RunOne(config);
  }

  chaos::CampaignOptions options;
  options.base_seed = base_seed;
  options.num_seeds = seeds;
  options.quick = quick;
  options.shrink = shrink;
  if (!workload.empty()) options.workloads = {workload};

  size_t last_decile = 0;
  chaos::CampaignResult result = chaos::RunCampaign(
      options, [&](size_t done, size_t total) {
        const size_t decile = 10 * done / total;
        if (decile > last_decile) {
          last_decile = decile;
          std::fprintf(stderr, "chaos_runner: %zu/%zu schedules done\n",
                       done, total);
        }
      });

  std::printf("campaign: %zu runs, %zu fault fires, %zu failing schedules\n",
              result.runs, result.total_fault_fires,
              result.failures.size());
  if (result.failures.empty()) {
    std::printf("OK: all invariants held\n");
    return 0;
  }

  size_t repro_index = 0;
  for (const chaos::ViolationReport& failure : result.failures) {
    chaos::RunConfig minimal = failure.config;
    minimal.schedule = failure.minimal;
    const std::string repro = chaos::RunConfigToJson(minimal);
    std::fprintf(stderr,
                 "FAILURE %zu (workload %s, %zu faults shrunk to %zu):\n",
                 repro_index, failure.config.workload.c_str(),
                 failure.config.schedule.size(), failure.minimal.size());
    PrintViolations(failure.violations);
    std::fprintf(stderr, "  repro: --schedule='%s'\n", repro.c_str());
    if (!out_dir.empty()) {
      const std::string path =
          out_dir + "/repro_" + std::to_string(repro_index) + ".json";
      if (!WriteFile(path, repro)) {
        std::fprintf(stderr, "chaos_runner: cannot write %s\n",
                     path.c_str());
      }
    }
    ++repro_index;
  }
  return 1;
}
