// Text analysis (tutorial slide 7): documents embed into a topic space in
// which some topics are already known (DB / DM / ML); the analyst wants the
// *novel* topics. We synthesise document embeddings with a known 3-topic
// structure in one subspace and a hidden 2-topic structure in another, then
// use minCEntropy and the residual transformation to surface the novelty.
//
// Build & run:  ./build/examples/document_topics
#include <cstdio>

#include "altspace/min_centropy.h"
#include "cluster/kmeans.h"
#include "data/generators.h"
#include "metrics/partition_similarity.h"
#include "orthogonal/residual_transform.h"

using namespace multiclust;

int main() {
  // Documents: dims {0,1,2} encode the known taxonomy (3 topics),
  // dims {3,4} a hidden alternative theme (2 topics).
  // The known taxonomy dominates the embedding (wider spread), as a well
  // established taxonomy would; the novel theme is a weaker signal.
  std::vector<ViewSpec> views(2);
  views[0] = {3, 3, 18.0, 0.9, "known_topics"};
  views[1] = {2, 2, 8.0, 0.9, "novel_theme"};
  auto ds = MakeMultiView(/*num_objects=*/260, views, /*noise_dims=*/1,
                          /*seed=*/5);
  if (!ds.ok()) return 1;
  const auto known = ds->GroundTruth("known_topics").value();
  const auto novel = ds->GroundTruth("novel_theme").value();
  std::printf("documents: %zu, embedding dims: %zu\n", ds->num_objects(),
              ds->num_dims());
  std::printf("known taxonomy: 3 topics; hidden alternative: 2 themes\n\n");

  // Baseline: plain k-means at the known taxonomy's k rediscovers it.
  KMeansOptions km3;
  km3.k = 3;
  km3.restarts = 8;
  km3.seed = 5;
  auto baseline = RunKMeans(ds->data(), km3);
  KMeansOptions km;
  km.k = 2;
  km.restarts = 8;
  km.seed = 5;
  std::printf("baseline k-means(3):        NMI(known)=%.3f NMI(novel)=%.3f\n",
              NormalizedMutualInformation(baseline->labels, known).value(),
              NormalizedMutualInformation(baseline->labels, novel).value());

  // minCEntropy: penalise information shared with the known taxonomy.
  MinCEntropyOptions mce;
  mce.k = 2;
  mce.lambda = 2.5;
  mce.seed = 5;
  auto alternative = RunMinCEntropy(ds->data(), {known}, mce);
  if (!alternative.ok()) return 1;
  std::printf("minCEntropy alternative:    NMI(known)=%.3f NMI(novel)=%.3f\n",
              NormalizedMutualInformation(alternative->labels, known).value(),
              NormalizedMutualInformation(alternative->labels, novel)
                  .value());

  // Residual transformation (Qi & Davidson 2009): closed-form map away
  // from the known topic means, then recluster.
  KMeansClusterer clusterer(km);
  auto residual = RunResidualTransform(ds->data(), known, &clusterer);
  if (!residual.ok()) return 1;
  std::printf("residual transform + kmeans: NMI(known)=%.3f NMI(novel)=%.3f\n",
              NormalizedMutualInformation(residual->clustering.labels, known)
                  .value(),
              NormalizedMutualInformation(residual->clustering.labels, novel)
                  .value());

  std::printf(
      "\nBoth alternative-clustering routes suppress the known taxonomy."
      " The original-\nspace method (minCEntropy) finds *an* alternative but"
      " the dominant known-topic\naxes obfuscate the weak hidden theme —"
      " exactly the limitation the tutorial\nascribes to original-space"
      " methods (slide 46). The space transformation\n(Qi & Davidson)"
      " removes the dominant factors first and recovers the hidden\ntheme"
      " cleanly.\n");
  return 0;
}
