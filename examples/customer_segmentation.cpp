// Customer segmentation (tutorial slides 14-18): customers group one way by
// professional attributes and another way by leisure attributes. Subspace
// mining (CLIQUE) enumerates clusters in all projections; OSCLU then selects
// a compact set of orthogonal concepts, and ASCLU answers "given that I
// already know the professional segmentation, what else is there?".
//
// Build & run:  ./build/examples/customer_segmentation
#include <cstdio>
#include <string>

#include "data/generators.h"
#include "metrics/partition_similarity.h"
#include "subspace/asclu.h"
#include "subspace/clique.h"
#include "subspace/osclu.h"

using namespace multiclust;

namespace {

void PrintClusters(const Dataset& ds, const SubspaceClustering& sc,
                   size_t limit) {
  size_t shown = 0;
  for (const auto& c : sc.clusters) {
    if (shown++ >= limit) {
      std::printf("  ... (%zu more)\n", sc.clusters.size() - limit);
      break;
    }
    std::string dims;
    for (size_t d : c.dims) {
      if (!dims.empty()) dims += ", ";
      dims += ds.column_names()[d];
    }
    std::printf("  %4zu customers in subspace {%s}\n", c.support(),
                dims.c_str());
  }
}

}  // namespace

int main() {
  auto ds = MakeCustomerScenario(/*num_customers=*/300, /*seed=*/7);
  if (!ds.ok()) return 1;
  std::printf("customers: %zu, attributes:", ds->num_objects());
  for (const auto& n : ds->column_names()) std::printf(" %s", n.c_str());
  std::printf("\n\n");

  // Mine every dense projection.
  CliqueOptions clique;
  clique.xi = 8;
  clique.tau = 0.04;
  clique.max_dims = 3;
  auto all = RunClique(ds->data(), clique);
  if (!all.ok()) return 1;
  std::printf("CLIQUE found %zu subspace clusters across %zu subspaces"
              " (heavily redundant)\n",
              all->clusters.size(), all->NumSubspaces());

  // Select orthogonal concepts.
  OscluOptions osclu;
  osclu.beta = 0.5;
  osclu.alpha = 0.4;
  auto selected = RunOsclu(*all, osclu);
  if (!selected.ok()) return 1;
  std::printf("\nOSCLU orthogonal selection keeps %zu clusters:\n",
              selected->clusters.size());
  PrintClusters(*ds, *selected, 10);

  const auto professional = ds->GroundTruth("professional").value();
  const auto leisure = ds->GroundTruth("leisure").value();
  std::printf("\nagreement with planted segmentations (pair F1):\n");
  std::printf("  professional view: %.3f\n",
              SubspacePairF1(*selected, professional).value());
  std::printf("  leisure view:      %.3f\n",
              SubspacePairF1(*selected, leisure).value());

  // Alternative clustering: the analyst already knows the professional
  // segmentation; ASCLU returns what is genuinely new.
  SubspaceClustering known;
  for (const auto& c : all->clusters) {
    if (c.dims == std::vector<size_t>{0, 1, 2}) known.clusters.push_back(c);
  }
  AscluOptions asclu;
  asclu.osclu = osclu;
  asclu.alpha_known = 0.5;
  auto novel = RunAsclu(*all, known, asclu);
  if (!novel.ok()) return 1;
  std::printf("\nASCLU alternatives given the professional view"
              " (%zu known clusters): %zu clusters\n",
              known.clusters.size(), novel->clusters.size());
  PrintClusters(*ds, *novel, 10);
  std::printf("  leisure-view agreement of the alternatives: %.3f\n",
              SubspacePairF1(*novel, leisure).value());
  return 0;
}
