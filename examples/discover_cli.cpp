// discover_cli: command-line entry point for the discovery pipeline.
// Reads a numeric CSV, finds several genuinely different clusterings, and
// writes the solutions back as label columns.
//
// Usage:
//   discover_cli <input.csv> [options]
//     --strategy=deckm|ortho|spectral|meta   (default deckm)
//     --solutions=N                          (default 2)
//     --k=K                                  (default 0 = auto silhouette)
//     --seed=S                               (default 1)
//     --out=path.csv                         (default: print summary only)
//     --label-column=NAME                    (drop this column from data)
//     --report-json=path.json                (write the machine-readable run
//                                             report: solutions, objective,
//                                             attempt diagnostics, metrics
//                                             and span summary — see
//                                             DESIGN.md "Report schema")
//
// With no arguments, runs a self-demo on the generated customer scenario.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/metrics.h"
#include "common/trace.h"
#include "multiclust.h"

using namespace multiclust;

namespace {

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string out;
  std::string label_column;
  std::string report_json;
  DiscoveryOptions options;
  std::string strategy = "deckm";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "strategy", &value)) {
      strategy = value;
    } else if (ParseFlag(arg, "solutions", &value)) {
      options.num_solutions = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "k", &value)) {
      options.k = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "seed", &value)) {
      options.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "out", &value)) {
      out = value;
    } else if (ParseFlag(arg, "label-column", &value)) {
      label_column = value;
    } else if (ParseFlag(arg, "report-json", &value)) {
      report_json = value;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      input = arg;
    }
  }

  if (strategy == "deckm") {
    options.strategy = DiscoveryStrategy::kDecorrelatedKMeans;
  } else if (strategy == "ortho") {
    options.strategy = DiscoveryStrategy::kOrthogonalProjections;
  } else if (strategy == "spectral") {
    options.strategy = DiscoveryStrategy::kSpectralViews;
  } else if (strategy == "meta") {
    options.strategy = DiscoveryStrategy::kMetaClustering;
  } else {
    std::fprintf(stderr, "unknown strategy '%s'\n", strategy.c_str());
    return 2;
  }

  // Load or self-generate.
  Dataset dataset;
  if (input.empty()) {
    std::printf("(no input file: running the self-demo on the generated"
                " customer scenario)\n");
    auto demo = MakeCustomerScenario(300, options.seed);
    if (!demo.ok()) return Fail(demo.status());
    dataset = std::move(demo).value();
  } else {
    CsvOptions csv;
    csv.label_column = label_column;
    auto loaded = ReadCsv(input, csv);
    if (!loaded.ok()) return Fail(loaded.status());
    dataset = std::move(loaded).value();
  }
  std::printf("data: %zu objects x %zu attributes\n", dataset.num_objects(),
              dataset.num_dims());

  // Arm the observability layer for the run when a report was requested so
  // the artifact carries the span summary and metrics snapshot (no-ops when
  // compiled out).
  if (!report_json.empty() && trace::kCompiledIn) {
    trace::Reset();
    metrics::Reset();
    trace::Enable();
  }

  auto report = DiscoverMultipleClusterings(dataset.data(), options);
  if (!report.ok()) return Fail(report.status());

  std::printf("strategy: %s, k = %zu, solutions found: %zu\n",
              report->strategy_name.c_str(), report->chosen_k,
              report->solutions.size());
  std::printf("mean silhouette quality: %.3f\n",
              report->objective.mean_quality);
  std::printf("mean pairwise dissimilarity: %.3f (min %.3f)\n",
              report->objective.mean_dissimilarity,
              report->objective.min_dissimilarity);
  std::printf("%s", report->solutions.Summary().c_str());

  if (!out.empty()) {
    Dataset annotated(dataset.data(), dataset.column_names());
    for (size_t s = 0; s < report->solutions.size(); ++s) {
      Status st = annotated.AddGroundTruth(
          "solution" + std::to_string(s), report->solutions.at(s).labels);
      if (!st.ok()) return Fail(st);
    }
    Status st = WriteCsv(annotated, out);
    if (!st.ok()) return Fail(st);
    std::printf("wrote %s with %zu solution columns\n", out.c_str(),
                report->solutions.size());
  }

  if (!report_json.empty()) {
    Status st = WriteDiscoveryReport(report_json, *report);
    if (trace::kCompiledIn) trace::Disable();
    if (!st.ok()) return Fail(st);
    std::printf("wrote run report to %s\n", report_json.c_str());
  }
  return 0;
}
