// discover_cli: command-line entry point for the discovery pipeline.
// Reads a numeric CSV, finds several genuinely different clusterings, and
// writes the solutions back as label columns.
//
// Usage:
//   discover_cli <input.csv> [options]
//     --strategy=deckm|ortho|spectral|meta   (default deckm)
//     --solutions=N                          (default 2)
//     --k=K                                  (default 0 = auto silhouette)
//     --seed=S                               (default 1)
//     --out=path.csv                         (default: print summary only)
//     --label-column=NAME                    (drop this column from data)
//     --report-json=path.json                (write the machine-readable run
//                                             report: solutions, objective,
//                                             attempt diagnostics, metrics
//                                             and span summary — see
//                                             DESIGN.md "Report schema")
//     --checkpoint-dir=path                  (arm crash-consistent snapshots;
//                                             see DESIGN.md "Crash recovery")
//     --resume                               (restore from --checkpoint-dir
//                                             instead of clearing it)
//     --crash-at=N [--crash-site=NAME]       (fault injection: simulated
//                                             process death at persistence
//                                             point N of site NAME, default
//                                             "dec-kmeans"; exits 3)
//
// Ctrl-C (SIGINT) / SIGTERM cancel the run cooperatively: the algorithms
// flush a final checkpoint (when armed) and the process exits 130 with a
// resume hint. A simulated crash (--crash-at) exits 3 the same way.
//
// With no arguments, runs a self-demo on the generated customer scenario.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/trace.h"
#include "multiclust.h"

using namespace multiclust;

namespace {

// Shared with the signal handler: CancelToken::Cancel is one relaxed
// atomic store, which is async-signal-safe.
CancelToken g_cancel;

extern "C" void HandleSignal(int) { g_cancel.Cancel(); }

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

// Exit codes: 1 = error, 2 = usage, 3 = simulated crash (checkpoint on
// disk), 130 = interrupted (checkpoint on disk when armed).
int ExitCodeFor(const Status& status) {
  if (status.code() == StatusCode::kAborted) return 3;
  if (status.code() == StatusCode::kCancelled) return 130;
  return 1;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string out;
  std::string label_column;
  std::string report_json;
  std::string checkpoint_dir;
  std::string crash_site = "dec-kmeans";
  bool resume = false;
  bool crash_armed = false;
  size_t crash_at = 0;
  DiscoveryOptions options;
  std::string strategy = "deckm";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "strategy", &value)) {
      strategy = value;
    } else if (ParseFlag(arg, "solutions", &value)) {
      options.num_solutions = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "k", &value)) {
      options.k = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "seed", &value)) {
      options.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "out", &value)) {
      out = value;
    } else if (ParseFlag(arg, "label-column", &value)) {
      label_column = value;
    } else if (ParseFlag(arg, "report-json", &value)) {
      report_json = value;
    } else if (ParseFlag(arg, "checkpoint-dir", &value)) {
      checkpoint_dir = value;
    } else if (arg == "--resume") {
      resume = true;
    } else if (ParseFlag(arg, "crash-at", &value)) {
      crash_armed = true;
      crash_at = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "crash-site", &value)) {
      crash_site = value;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      input = arg;
    }
  }

  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return 2;
  }

  if (strategy == "deckm") {
    options.strategy = DiscoveryStrategy::kDecorrelatedKMeans;
  } else if (strategy == "ortho") {
    options.strategy = DiscoveryStrategy::kOrthogonalProjections;
  } else if (strategy == "spectral") {
    options.strategy = DiscoveryStrategy::kSpectralViews;
  } else if (strategy == "meta") {
    options.strategy = DiscoveryStrategy::kMetaClustering;
  } else {
    std::fprintf(stderr, "unknown strategy '%s'\n", strategy.c_str());
    return 2;
  }

  // Load or self-generate.
  Dataset dataset;
  if (input.empty()) {
    std::printf("(no input file: running the self-demo on the generated"
                " customer scenario)\n");
    auto demo = MakeCustomerScenario(300, options.seed);
    if (!demo.ok()) return Fail(demo.status());
    dataset = std::move(demo).value();
  } else {
    CsvOptions csv;
    csv.label_column = label_column;
    auto loaded = ReadCsv(input, csv);
    if (!loaded.ok()) return Fail(loaded.status());
    dataset = std::move(loaded).value();
  }
  std::printf("data: %zu objects x %zu attributes\n", dataset.num_objects(),
              dataset.num_dims());

  // Arm the observability layer for the run when a report was requested so
  // the artifact carries the span summary and metrics snapshot (no-ops when
  // compiled out).
  if (!report_json.empty() && trace::kCompiledIn) {
    trace::Reset();
    metrics::Reset();
    trace::Enable();
  }

  // Cooperative shutdown: SIGINT/SIGTERM trip the cancel token; the run
  // winds down at its next guard check and flushes a final checkpoint.
  options.budget.cancel = &g_cancel;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::unique_ptr<Checkpointer> checkpointer;
  if (!checkpoint_dir.empty()) {
    checkpointer = std::make_unique<Checkpointer>(checkpoint_dir);
    if (!resume) {
      // A fresh run must not restore another configuration's leftovers.
      Status cleared = checkpointer->Clear();
      if (!cleared.ok()) return Fail(cleared);
    }
    options.budget.checkpoint = checkpointer.get();
  }

  if (crash_armed) {
#if defined(MULTICLUST_FAULT_INJECTION)
    FaultSpec spec;
    spec.site = crash_site;
    spec.kind = FaultKind::kCrash;
    spec.at_iteration = crash_at;
    spec.max_fires = 1;
    fault::Arm(spec);
#else
    std::fprintf(stderr,
                 "--crash-at requires a build with fault injection "
                 "(-DMULTICLUST_FAULT_INJECTION=ON)\n");
    return 2;
#endif
  }

  auto report = DiscoverMultipleClusterings(dataset.data(), options);
  if (checkpointer != nullptr) {
    for (const std::string& w : checkpointer->TakeWarnings()) {
      std::fprintf(stderr, "checkpoint: %s\n", w.c_str());
    }
  }
  if (!report.ok()) {
    if (checkpointer != nullptr &&
        (report.status().code() == StatusCode::kAborted ||
         report.status().code() == StatusCode::kCancelled)) {
      std::fprintf(stderr,
                   "run interrupted; %zu snapshot(s) in %s — rerun with "
                   "--checkpoint-dir=%s --resume to continue\n",
                   checkpointer->snapshots_written(), checkpoint_dir.c_str(),
                   checkpoint_dir.c_str());
    }
    return Fail(report.status());
  }

  std::printf("strategy: %s, k = %zu, solutions found: %zu\n",
              report->strategy_name.c_str(), report->chosen_k,
              report->solutions.size());
  std::printf("mean silhouette quality: %.3f\n",
              report->objective.mean_quality);
  std::printf("mean pairwise dissimilarity: %.3f (min %.3f)\n",
              report->objective.mean_dissimilarity,
              report->objective.min_dissimilarity);
  std::printf("%s", report->solutions.Summary().c_str());

  if (!out.empty()) {
    Dataset annotated(dataset.data(), dataset.column_names());
    for (size_t s = 0; s < report->solutions.size(); ++s) {
      Status st = annotated.AddGroundTruth(
          "solution" + std::to_string(s), report->solutions.at(s).labels);
      if (!st.ok()) return Fail(st);
    }
    Status st = WriteCsv(annotated, out);
    if (!st.ok()) return Fail(st);
    std::printf("wrote %s with %zu solution columns\n", out.c_str(),
                report->solutions.size());
  }

  if (!report_json.empty()) {
    Status st = WriteDiscoveryReport(report_json, *report);
    if (trace::kCompiledIn) trace::Disable();
    if (!st.ok()) return Fail(st);
    std::printf("wrote run report to %s\n", report_json.c_str());
  }
  return 0;
}
