// discover_cli: command-line entry point for the discovery pipeline.
// Reads a numeric CSV, finds several genuinely different clusterings, and
// writes the solutions back as label columns.
//
// Usage:
//   discover_cli <input.csv> [options]
//     --strategy=deckm|ortho|spectral|meta   (default deckm)
//     --solutions=N                          (default 2)
//     --k=K                                  (default 0 = auto silhouette)
//     --seed=S                               (default 1)
//     --out=path.csv                         (default: print summary only)
//     --label-column=NAME                    (drop this column from data)
//     --report-json=path.json                (write the machine-readable run
//                                             report: solutions, objective,
//                                             attempt diagnostics, metrics
//                                             and span summary — see
//                                             DESIGN.md "Report schema")
//     --checkpoint-dir=path                  (arm crash-consistent snapshots;
//                                             see DESIGN.md "Crash recovery")
//     --resume                               (restore from --checkpoint-dir
//                                             instead of clearing it)
//     --crash-at=N [--crash-site=NAME]       (fault injection: simulated
//                                             process death at persistence
//                                             point N of site NAME, default
//                                             "dec-kmeans"; exits 3)
//     --progress=PATH|-                      (stream live NDJSON progress
//                                             events to PATH, or to stdout
//                                             with "-"; human output moves
//                                             to stderr so the stream stays
//                                             machine-parseable)
//     --metrics-out=PATH                     (rewrite PATH with an
//                                             OpenMetrics snapshot every
//                                             500 ms and once at exit)
//     --flamegraph=PATH                      (run the span sampler during
//                                             the discovery call and write
//                                             collapsed stacks to PATH for
//                                             flamegraph.pl / speedscope;
//                                             prints a self/total table)
//
// Ctrl-C (SIGINT) / SIGTERM cancel the run cooperatively: the algorithms
// flush a final checkpoint (when armed) and the process exits 130 with a
// resume hint. A simulated crash (--crash-at) exits 3 the same way.
//
// With no arguments, runs a self-demo on the generated customer scenario.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/profile.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "multiclust.h"

using namespace multiclust;

namespace {

// Shared with the signal handler: CancelToken::Cancel is one relaxed
// atomic store, which is async-signal-safe.
CancelToken g_cancel;

extern "C" void HandleSignal(int) { g_cancel.Cancel(); }

// Human-facing output stream. Normally stdout; when --progress=- claims
// stdout for the NDJSON event stream, every human line moves here (stderr)
// so consumers can pipe the events without filtering.
std::FILE* g_human = nullptr;

// Tears down the process-wide telemetry hooks in the right order no matter
// which exit path runs: the sink must be uninstalled before its owner
// destroys it, and the background threads must be joined before exit.
struct TelemetryTeardown {
  ~TelemetryTeardown() {
    telemetry::SetProgressSink(nullptr);
    if (telemetry::SamplerRunning()) telemetry::StopSampler();
    if (telemetry::MetricsExportRunning()) telemetry::StopMetricsExport();
  }
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

// Exit codes: 1 = error, 2 = usage, 3 = simulated crash (checkpoint on
// disk), 130 = interrupted (checkpoint on disk when armed).
int ExitCodeFor(const Status& status) {
  if (status.code() == StatusCode::kAborted) return 3;
  if (status.code() == StatusCode::kCancelled) return 130;
  return 1;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

}  // namespace

int main(int argc, char** argv) {
  g_human = stdout;
  std::string input;
  std::string out;
  std::string label_column;
  std::string report_json;
  std::string checkpoint_dir;
  std::string progress;
  std::string metrics_out;
  std::string flamegraph;
  std::string crash_site = "dec-kmeans";
  bool resume = false;
  bool crash_armed = false;
  size_t crash_at = 0;
  DiscoveryOptions options;
  std::string strategy = "deckm";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "strategy", &value)) {
      strategy = value;
    } else if (ParseFlag(arg, "solutions", &value)) {
      options.num_solutions = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "k", &value)) {
      options.k = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "seed", &value)) {
      options.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "out", &value)) {
      out = value;
    } else if (ParseFlag(arg, "label-column", &value)) {
      label_column = value;
    } else if (ParseFlag(arg, "report-json", &value)) {
      report_json = value;
    } else if (ParseFlag(arg, "checkpoint-dir", &value)) {
      checkpoint_dir = value;
    } else if (ParseFlag(arg, "progress", &value)) {
      progress = value;
    } else if (ParseFlag(arg, "metrics-out", &value)) {
      metrics_out = value;
    } else if (ParseFlag(arg, "flamegraph", &value)) {
      flamegraph = value;
    } else if (arg == "--resume") {
      resume = true;
    } else if (ParseFlag(arg, "crash-at", &value)) {
      crash_armed = true;
      crash_at = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "crash-site", &value)) {
      crash_site = value;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      input = arg;
    }
  }

  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return 2;
  }

  // --progress=- claims stdout for the event stream; everything meant for
  // a person moves to stderr.
  if (progress == "-") g_human = stderr;

  if (strategy == "deckm") {
    options.strategy = DiscoveryStrategy::kDecorrelatedKMeans;
  } else if (strategy == "ortho") {
    options.strategy = DiscoveryStrategy::kOrthogonalProjections;
  } else if (strategy == "spectral") {
    options.strategy = DiscoveryStrategy::kSpectralViews;
  } else if (strategy == "meta") {
    options.strategy = DiscoveryStrategy::kMetaClustering;
  } else {
    std::fprintf(stderr, "unknown strategy '%s'\n", strategy.c_str());
    return 2;
  }

  // Load or self-generate.
  Dataset dataset;
  if (input.empty()) {
    std::fprintf(g_human,
                 "(no input file: running the self-demo on the generated"
                 " customer scenario)\n");
    auto demo = MakeCustomerScenario(300, options.seed);
    if (!demo.ok()) return Fail(demo.status());
    dataset = std::move(demo).value();
  } else {
    CsvOptions csv;
    csv.label_column = label_column;
    auto loaded = ReadCsv(input, csv);
    if (!loaded.ok()) return Fail(loaded.status());
    dataset = std::move(loaded).value();
  }
  std::fprintf(g_human, "data: %zu objects x %zu attributes\n",
               dataset.num_objects(), dataset.num_dims());

  // Arm the observability layer for the run when any artifact that feeds
  // off it was requested: the report carries the span summary and metrics
  // snapshot, the sampler attributes ticks to open spans, and the metrics
  // exporter scrapes the registry (no-ops when compiled out).
  const bool wants_telemetry = !report_json.empty() || !progress.empty() ||
                               !metrics_out.empty() || !flamegraph.empty();
  if (wants_telemetry && trace::kCompiledIn) {
    trace::Reset();
    metrics::Reset();
    trace::Enable();
  }

  // Live telemetry plane: progress stream, OpenMetrics export, sampler.
  // The sink must outlive the teardown guard (declared after it, destroyed
  // before it), which uninstalls the process-wide pointer first.
  std::unique_ptr<telemetry::NdjsonProgressSink> progress_sink;
  TelemetryTeardown teardown;
  if (!progress.empty()) {
    if (!telemetry::kTelemetryCompiledIn) {
      std::fprintf(stderr,
                   "warning: --progress ignored (telemetry compiled out: "
                   "-DMULTICLUST_TRACING=OFF)\n");
    } else if (progress == "-") {
      progress_sink = std::make_unique<telemetry::NdjsonProgressSink>(stdout);
    } else {
      std::FILE* f = std::fopen(progress.c_str(), "w");
      if (f == nullptr) {
        return Fail(Status::IoError("cannot open --progress file '" +
                                    progress + "'"));
      }
      progress_sink = std::make_unique<telemetry::NdjsonProgressSink>(
          f, /*take_ownership=*/true);
    }
    if (progress_sink != nullptr) {
      telemetry::SetProgressSink(progress_sink.get());
    }
  }
  if (!metrics_out.empty()) {
    telemetry::MetricsExportOptions mopts;
    mopts.path = metrics_out;
    Status st = telemetry::StartMetricsExport(mopts);
    if (!st.ok()) {
      std::fprintf(stderr, "warning: --metrics-out: %s\n",
                   st.ToString().c_str());
    }
  }
  if (!flamegraph.empty()) {
    Status st = telemetry::StartSampler();
    if (!st.ok()) {
      std::fprintf(stderr, "warning: --flamegraph: %s\n",
                   st.ToString().c_str());
    }
  }

  // Cooperative shutdown: SIGINT/SIGTERM trip the cancel token; the run
  // winds down at its next guard check and flushes a final checkpoint.
  options.budget.cancel = &g_cancel;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::unique_ptr<Checkpointer> checkpointer;
  if (!checkpoint_dir.empty()) {
    checkpointer = std::make_unique<Checkpointer>(checkpoint_dir);
    if (!resume) {
      // A fresh run must not restore another configuration's leftovers.
      Status cleared = checkpointer->Clear();
      if (!cleared.ok()) return Fail(cleared);
    }
    options.budget.checkpoint = checkpointer.get();
  }

  if (crash_armed) {
#if defined(MULTICLUST_FAULT_INJECTION)
    FaultSpec spec;
    spec.site = crash_site;
    spec.kind = FaultKind::kCrash;
    spec.at_iteration = crash_at;
    spec.max_fires = 1;
    fault::Arm(spec);
#else
    std::fprintf(stderr,
                 "--crash-at requires a build with fault injection "
                 "(-DMULTICLUST_FAULT_INJECTION=ON)\n");
    return 2;
#endif
  }

  auto report = DiscoverMultipleClusterings(dataset.data(), options);

  // The progress stream ends with exactly one terminal event, success or
  // not, so a tailing consumer knows the run is over.
  telemetry::EmitStage("run", report.ok() ? "complete" : "error",
                       /*terminal=*/true);

  if (telemetry::SamplerRunning()) {
    telemetry::StopSampler();
    std::FILE* f = std::fopen(flamegraph.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot open --flamegraph file '%s'\n",
                   flamegraph.c_str());
    } else {
      const std::string collapsed = telemetry::CollapsedStacks();
      std::fwrite(collapsed.data(), 1, collapsed.size(), f);
      std::fclose(f);
      std::fprintf(g_human,
                   "wrote %zu samples of collapsed span stacks to %s\n",
                   telemetry::SampleCount(), flamegraph.c_str());
      std::fprintf(g_human, "%s", telemetry::SamplerTableString().c_str());
    }
  }

  if (checkpointer != nullptr) {
    for (const std::string& w : checkpointer->TakeWarnings()) {
      std::fprintf(stderr, "checkpoint: %s\n", w.c_str());
    }
  }
  if (!report.ok()) {
    if (checkpointer != nullptr &&
        (report.status().code() == StatusCode::kAborted ||
         report.status().code() == StatusCode::kCancelled)) {
      std::fprintf(stderr,
                   "run interrupted; %zu snapshot(s) in %s — rerun with "
                   "--checkpoint-dir=%s --resume to continue\n",
                   checkpointer->snapshots_written(), checkpoint_dir.c_str(),
                   checkpoint_dir.c_str());
    }
    return Fail(report.status());
  }

  std::fprintf(g_human, "strategy: %s, k = %zu, solutions found: %zu\n",
               report->strategy_name.c_str(), report->chosen_k,
               report->solutions.size());
  std::fprintf(g_human, "mean silhouette quality: %.3f\n",
               report->objective.mean_quality);
  std::fprintf(g_human, "mean pairwise dissimilarity: %.3f (min %.3f)\n",
               report->objective.mean_dissimilarity,
               report->objective.min_dissimilarity);
  std::fprintf(g_human, "%s", report->solutions.Summary().c_str());
  // Only when a telemetry surface was requested: the bare self-demo's
  // stdout stays byte-stable across runs (plain `diff` is a documented
  // determinism oracle), and wall-clock lines would break that.
  if (wants_telemetry && report->resource.captured) {
    std::fprintf(g_human, "%s", report->resource.ToString().c_str());
  }

  if (!out.empty()) {
    Dataset annotated(dataset.data(), dataset.column_names());
    for (size_t s = 0; s < report->solutions.size(); ++s) {
      Status st = annotated.AddGroundTruth(
          "solution" + std::to_string(s), report->solutions.at(s).labels);
      if (!st.ok()) return Fail(st);
    }
    Status st = WriteCsv(annotated, out);
    if (!st.ok()) return Fail(st);
    std::fprintf(g_human, "wrote %s with %zu solution columns\n", out.c_str(),
                 report->solutions.size());
  }

  if (!report_json.empty()) {
    Status st = WriteDiscoveryReport(report_json, *report);
    if (trace::kCompiledIn) trace::Disable();
    if (!st.ok()) return Fail(st);
    std::fprintf(g_human, "wrote run report to %s\n", report_json.c_str());
  }
  return 0;
}
