// Observability walkthrough: run the multi-clustering discovery pipeline
// with the span tracer armed, then
//   1. write a Chrome trace-event file (open chrome://tracing or
//      https://ui.perfetto.dev and load trace.json to see the span tree),
//   2. print the span summary table (wall-time per instrumented region),
//   3. print the metrics registry (iteration/reseed/restart counters),
//   4. print the per-attempt ConvergenceTrace that the pipeline collected.
//
// When the library is built with -DMULTICLUST_TRACING=OFF, steps 1-3
// degrade to empty output at zero cost; step 4 (convergence telemetry) is
// always available.
//
// Build & run:  ./build/examples/trace_to_file [trace.json]
#include <cstdio>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/pipeline.h"
#include "data/generators.h"

using namespace multiclust;

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "trace.json";

  // Two planted views: the same 200 objects cluster one way in dimensions
  // {0,1} and a genuinely different way in dimensions {2,3}.
  std::vector<ViewSpec> views(2);
  views[0] = {3, 2, 12.0, 0.8, "view-a"};
  views[1] = {2, 2, 9.0, 0.8, "view-b"};
  auto ds = MakeMultiView(200, views, /*noise_dims=*/1, /*seed=*/11);
  if (!ds.ok()) {
    std::printf("data generation failed: %s\n",
                ds.status().ToString().c_str());
    return 1;
  }

  trace::Enable();  // spans are dropped (cheaply) until this call

  DiscoveryOptions opts;
  opts.num_solutions = 2;
  opts.k = 0;  // auto-select via silhouette — shows up as pipeline.select_k
  opts.seed = 11;
  auto report = DiscoverMultipleClusterings(ds->data(), opts);
  if (!report.ok()) {
    std::printf("discovery failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("discovered %zu solutions with strategy %s (k = %zu)\n\n",
              report->solutions.size(), report->strategy_name.c_str(),
              report->chosen_k);

  // 1. Chrome trace export.
  Status written = trace::WriteChromeTrace(path);
  if (written.ok()) {
    std::printf("wrote %zu trace events to %s\n", trace::EventCount(), path);
    std::printf("open chrome://tracing (or https://ui.perfetto.dev) and "
                "load the file to inspect the span tree.\n\n");
  } else {
    std::printf("trace export failed: %s\n\n", written.ToString().c_str());
  }

  // 2. Span summary: where the wall-time went.
  std::printf("%s\n", trace::SummaryString().c_str());

  // 3. Metrics registry: how much work each algorithm did.
  std::printf("%s\n", metrics::SummaryString().c_str());

  // 4. Convergence telemetry (always compiled, even with tracing off).
  for (const RunDiagnostics& diag : report->attempts) {
    std::printf("attempt [%s]: %s\n", diag.algorithm.c_str(),
                diag.ToString().c_str());
  }

  trace::Disable();
  return 0;
}
