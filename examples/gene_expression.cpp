// Gene expression analysis (tutorial slide 5): one gene may have several
// functional roles, so a single partition cannot describe the data —
// subspace clusters capture overlapping co-expression groups, and the
// significance filter (STATPC) plus relevance selection (RESCU) keep the
// result interpretable.
//
// Build & run:  ./build/examples/gene_expression
#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "data/generators.h"
#include "subspace/rescu.h"
#include "subspace/schism.h"
#include "subspace/statpc.h"

using namespace multiclust;

int main() {
  const size_t kGenes = 200;
  auto ds = MakeGeneExpression(kGenes, /*num_conditions=*/12,
                               /*num_groups=*/4, /*shift=*/5.0,
                               /*noise=*/1.0, /*seed=*/11);
  if (!ds.ok()) return 1;
  std::printf("genes: %zu, conditions: %zu, planted functional groups: %zu\n",
              ds->num_objects(), ds->num_dims(), ds->num_ground_truths());

  // SCHISM: adaptive-threshold subspace mining over the expression grid.
  SchismOptions schism;
  schism.xi = 5;
  schism.tau = 0.01;
  schism.max_dims = 3;
  auto mined = RunSchism(ds->data(), schism);
  if (!mined.ok()) return 1;
  std::printf("\nSCHISM mined %zu co-expression clusters\n",
              mined->clusters.size());

  // Keep only the statistically significant ones.
  StatpcOptions statpc;
  statpc.alpha0 = 1e-4;
  std::vector<StatpcScore> scores;
  auto significant = RunStatpc(ds->data(), *mined, statpc, &scores);
  if (!significant.ok()) return 1;
  size_t n_significant = 0;
  for (const auto& s : scores) n_significant += s.significant;
  std::printf("significant under the binomial null: %zu of %zu;"
              " explain-selection keeps %zu\n",
              n_significant, scores.size(), significant->clusters.size());

  // Alternative pipeline: relevance-based (RESCU-style) selection.
  RescuOptions rescu;
  rescu.max_redundancy = 0.6;
  auto relevant = RunRescu(*mined, rescu);
  if (!relevant.ok()) return 1;
  std::printf("RESCU relevance selection keeps %zu\n",
              relevant->clusters.size());

  // Multiple-role genes: count genes participating in >= 2 selected
  // clusters of *different* subspaces.
  size_t multi_role = 0;
  for (size_t g = 0; g < kGenes; ++g) {
    std::set<std::vector<size_t>> subspaces;
    for (const auto& c : relevant->clusters) {
      if (std::binary_search(c.objects.begin(), c.objects.end(),
                             static_cast<int>(g))) {
        subspaces.insert(c.dims);
      }
    }
    if (subspaces.size() >= 2) ++multi_role;
  }
  std::printf("\ngenes with multiple functional roles (>= 2 clusters in"
              " different condition subsets): %zu of %zu\n",
              multi_role, kGenes);

  // Compare against the planted memberships: per planted group, the best
  // matching selected cluster by object-set Jaccard.
  std::printf("\nper planted group, best Jaccard with a selected cluster:\n");
  for (const std::string& name : ds->GroundTruthNames()) {
    const auto membership = ds->GroundTruth(name).value();
    std::vector<int> members;
    for (size_t i = 0; i < membership.size(); ++i) {
      if (membership[i] == 1) members.push_back(static_cast<int>(i));
    }
    double best = 0.0;
    for (const auto& c : relevant->clusters) {
      std::vector<int> inter;
      std::set_intersection(members.begin(), members.end(),
                            c.objects.begin(), c.objects.end(),
                            std::back_inserter(inter));
      const double uni = static_cast<double>(members.size() +
                                             c.objects.size() - inter.size());
      if (uni > 0) best = std::max(best, inter.size() / uni);
    }
    std::printf("  %-8s |members|=%4zu  best Jaccard=%.3f\n", name.c_str(),
                members.size(), best);
  }
  return 0;
}
