// Quickstart: generate the tutorial's "four squares" toy dataset, then
// discover its two alternative clusterings three different ways —
// simultaneously (Decorrelated k-means), iteratively from given knowledge
// (COALA), and via an orthogonal space transformation (Cui et al.).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "altspace/coala.h"
#include "altspace/dec_kmeans.h"
#include "cluster/kmeans.h"
#include "data/generators.h"
#include "metrics/multi_solution.h"
#include "metrics/partition_similarity.h"
#include "orthogonal/ortho_projection.h"

using namespace multiclust;

namespace {

void Report(const char* name, const std::vector<int>& labels,
            const std::vector<int>& horizontal,
            const std::vector<int>& vertical) {
  std::printf("  %-28s NMI(horizontal)=%.3f  NMI(vertical)=%.3f\n", name,
              NormalizedMutualInformation(labels, horizontal).value(),
              NormalizedMutualInformation(labels, vertical).value());
}

}  // namespace

int main() {
  // Four Gaussian blobs on the corners of a square: both the horizontal
  // and the vertical 2-way split are equally valid clusterings (tutorial
  // slide 26).
  auto ds = MakeFourSquares(/*points_per_corner=*/50, /*separation=*/10.0,
                            /*stddev=*/0.8, /*seed=*/42);
  if (!ds.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 ds.status().ToString().c_str());
    return 1;
  }
  const auto horizontal = ds->GroundTruth("horizontal").value();
  const auto vertical = ds->GroundTruth("vertical").value();
  std::printf("dataset: %zu objects, %zu dims, 2 planted alternative"
              " clusterings\n\n",
              ds->num_objects(), ds->num_dims());

  // --- 1. Plain k-means finds only ONE of the two solutions. ---
  KMeansOptions km;
  km.k = 2;
  km.restarts = 10;
  km.seed = 1;
  auto single = RunKMeans(ds->data(), km);
  std::printf("1. traditional k-means (one solution only):\n");
  Report("kmeans", single->labels, horizontal, vertical);

  // --- 2. Decorrelated k-means finds BOTH simultaneously. ---
  DecKMeansOptions dk;
  dk.ks = {2, 2};
  dk.lambda = 4.0;
  dk.restarts = 5;
  dk.seed = 2;
  auto both = RunDecorrelatedKMeans(ds->data(), dk);
  std::printf("\n2. decorrelated k-means (simultaneous, Jain et al. 2008):\n");
  Report("solution A", both->solutions.at(0).labels, horizontal, vertical);
  Report("solution B", both->solutions.at(1).labels, horizontal, vertical);
  auto match = MatchSolutionsToTruths({horizontal, vertical},
                                      both->solutions.Labels());
  std::printf("  recovery of both planted clusterings: %.3f\n",
              match->mean_recovery);

  // --- 3. COALA: given the horizontal split, find the alternative. ---
  CoalaOptions co;
  co.k = 2;
  co.w = 0.4;
  auto alt = RunCoala(ds->data(), horizontal, co);
  std::printf("\n3. COALA alternative given 'horizontal'"
              " (iterative, Bae & Bailey 2006):\n");
  Report("alternative", alt->labels, horizontal, vertical);

  // --- 4. Orthogonal projections: iterate until structure is exhausted. ---
  KMeansClusterer clusterer(km);
  OrthoProjectionOptions op;
  op.max_views = 2;
  auto ortho = RunOrthoProjection(ds->data(), &clusterer, op);
  std::printf("\n4. orthogonal projection iteration (Cui et al. 2007):\n");
  for (size_t v = 0; v < ortho->views.size(); ++v) {
    char label[32];
    std::snprintf(label, sizeof(label), "view %zu", v);
    Report(label, ortho->views[v].clustering.labels, horizontal, vertical);
  }
  return 0;
}
