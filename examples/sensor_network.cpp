// Sensor surveillance (tutorial slide 6): sensor nodes carry two physical
// views (temperature, humidity) with independent groupings, and some nodes
// report unreliable values. Multi-view DBSCAN combines the views by union
// (good for sparse views) or intersection (good for unreliable views), and
// co-EM fits a consensus mixture across views.
//
// Build & run:  ./build/examples/sensor_network
#include <cstdio>

#include "data/generators.h"
#include "metrics/clustering_quality.h"
#include "metrics/partition_similarity.h"
#include "multiview/co_em.h"
#include "multiview/mv_dbscan.h"

using namespace multiclust;

int main() {
  auto ds = MakeSensorScenario(/*num_sensors=*/240, /*unreliable_frac=*/0.15,
                               /*seed=*/3);
  if (!ds.ok()) return 1;
  const Matrix temperature_view = ds->data().SelectColumns({0, 1});
  const Matrix humidity_view = ds->data().SelectColumns({2, 3});
  const auto temp_truth = ds->GroundTruth("temperature").value();
  const auto hum_truth = ds->GroundTruth("humidity").value();
  std::printf("sensors: %zu (15%% with one unreliable view)\n\n",
              ds->num_objects());

  // Multi-view DBSCAN, both combination rules.
  for (const auto combo :
       {ViewCombination::kUnion, ViewCombination::kIntersection}) {
    MvDbscanOptions opts;
    opts.eps = {1.4, 1.4};
    opts.min_pts = 5;
    opts.combination = combo;
    auto c = RunMvDbscan({temperature_view, humidity_view}, opts);
    if (!c.ok()) return 1;
    std::printf("%-24s clusters=%zu noise=%.2f"
                "  NMI(temp)=%.3f  NMI(humidity)=%.3f\n",
                c->algorithm.c_str(), c->NumClusters(),
                NoiseFraction(c->labels),
                NormalizedMutualInformation(c->labels, temp_truth).value(),
                NormalizedMutualInformation(c->labels, hum_truth).value());
  }

  // Per-view DBSCAN baselines (single representation only).
  for (int view = 0; view < 2; ++view) {
    MvDbscanOptions opts;
    opts.eps = {1.4};
    opts.min_pts = 5;
    auto c = RunMvDbscan({view == 0 ? temperature_view : humidity_view},
                         opts);
    if (!c.ok()) return 1;
    std::printf("single-view %-12s clusters=%zu noise=%.2f  NMI(own)=%.3f\n",
                view == 0 ? "temperature" : "humidity", c->NumClusters(),
                NoiseFraction(c->labels),
                NormalizedMutualInformation(
                    c->labels, view == 0 ? temp_truth : hum_truth)
                    .value());
  }

  // co-EM consensus across the views (treats them as two representations
  // of one grouping; agreement measures how compatible the views are).
  CoEmOptions coem;
  coem.k = 3;
  coem.seed = 3;
  auto r = RunCoEm(temperature_view, humidity_view, coem);
  if (!r.ok()) return 1;
  std::printf("\nco-EM: %zu iterations, inter-view agreement %.3f\n",
              r->iterations, r->agreement);
  std::printf("  consensus NMI(temp)=%.3f NMI(humidity)=%.3f\n",
              NormalizedMutualInformation(r->consensus.labels, temp_truth)
                  .value(),
              NormalizedMutualInformation(r->consensus.labels, hum_truth)
                  .value());
  std::printf("\n(The views carry independent groupings, so a low agreement"
              " is the expected\n signal that a single consensus clustering"
              " cannot explain this network.)\n");
  return 0;
}
